"""Synthetic stand-ins for the paper's evaluation datasets (Table II).

The paper evaluates on six real-world graphs from SNAP and WebGraph:

=============  =====  ======  ======  =========  ===
Graph          |V|    |E|     Size    Category   d
=============  =====  ======  ======  =========  ===
web-Google     0.9M   5.1M    48MB    Web        21
cit-Patents    3.8M   16.5M   0.2GB   Citation   26
as-Skitter     1.7M   22.2M   0.2GB   Network    31
soc-LiveJ.     4.9M   69.0M   0.6GB   Social     28
arabic-2005    22.7M  0.6B    5.0GB   Web        133
uk-2005        39.6M  0.8B    6.7GB   Web        45
=============  =====  ======  ======  =========  ===

Those files are not available offline, and a pure-Python cycle simulator
could not traverse billion-edge graphs anyway.  Instead each dataset is
regenerated at reduced scale with the *structural statistics that matter
to a GRW accelerator* preserved:

* directedness (drives early termination, the scheduler's whole reason to
  exist — the paper notes ~80% of real graphs are directed);
* dangling-vertex fraction (walks die at zero-out-degree vertices);
* degree skew (power-law exponent — drives per-step service variance);
* mean degree (drives column-list footprint and alias table size);
* working-set size relative to on-chip SRAM (drives FastRW's cache cliff;
  the capacity threshold in the FastRW model is scaled identically, see
  :mod:`repro.baselines.fastrw`).

The substitution is recorded in DESIGN.md.  Paper-reported values are kept
on each spec so Table II can print both columns side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.generators import powerlaw
from repro.sampling.base import normalize_seed

#: Scale factor applied to |V| and |E| for the SNAP-class graphs.
DEFAULT_SCALE_DIVISOR = 100

#: ``SeedSequence((seed, tag))`` stream tags for the per-dataset child
#: streams.  The values keep the historical xor salts as names so the
#: streams stay recognizably distinct; the *mechanism* (spawn-key
#: tuples, not xor) is what RW102 requires.
_WEIGHT_STREAM_TAG = 0x7A3D
_SCHEMA_STREAM_TAG = 0x5EED


@dataclass(frozen=True)
class DatasetSpec:
    """Catalog entry describing one evaluation graph.

    ``paper_*`` fields echo Table II; the remaining fields parameterize the
    synthetic generator that produces the scaled stand-in.
    """

    name: str
    long_name: str
    category: str
    paper_vertices: int
    paper_edges: int
    paper_size: str
    paper_diameter: int
    directed: bool
    exponent: float
    dangling_fraction: float
    scaled_vertices: int
    scaled_edges: int

    @property
    def mean_degree(self) -> float:
        """Mean out-degree implied by the paper's counts."""
        return self.paper_edges / self.paper_vertices

    def paper_size_bytes(self) -> int:
        """Table II's on-disk size parsed to bytes (cache-model input)."""
        text = self.paper_size.upper()
        if text.endswith("GB"):
            return int(float(text[:-2]) * 1e9)
        if text.endswith("MB"):
            return int(float(text[:-2]) * 1e6)
        raise GraphError(f"unparseable size {self.paper_size!r}")


#: The six Table II graphs, ordered by edge count as in the paper.
PAPER_DATASETS: dict[str, DatasetSpec] = {
    "WG": DatasetSpec(
        name="WG",
        long_name="web-Google",
        category="Web",
        paper_vertices=900_000,
        paper_edges=5_100_000,
        paper_size="48MB",
        paper_diameter=21,
        directed=True,
        exponent=2.2,
        dangling_fraction=0.12,
        scaled_vertices=9_000,
        scaled_edges=51_000,
    ),
    "CP": DatasetSpec(
        name="CP",
        long_name="cit-Patents",
        category="Citation",
        paper_vertices=3_800_000,
        paper_edges=16_500_000,
        paper_size="0.2GB",
        paper_diameter=26,
        directed=True,
        exponent=2.6,
        dangling_fraction=0.28,
        scaled_vertices=38_000,
        scaled_edges=165_000,
    ),
    "AS": DatasetSpec(
        name="AS",
        long_name="as-Skitter",
        category="Network",
        paper_vertices=1_700_000,
        paper_edges=22_200_000,
        paper_size="0.2GB",
        paper_diameter=31,
        directed=False,
        exponent=2.0,
        dangling_fraction=0.0,
        scaled_vertices=17_000,
        scaled_edges=111_000,  # undirected: mirrored to ~222k directed edges
    ),
    "LJ": DatasetSpec(
        name="LJ",
        long_name="soc-LiveJournal",
        category="Social",
        paper_vertices=4_900_000,
        paper_edges=69_000_000,
        paper_size="0.6GB",
        paper_diameter=28,
        directed=False,  # the paper attributes LJ's low imbalance to its
        # undirected structure (Section VIII-C1)
        exponent=2.1,
        dangling_fraction=0.0,
        scaled_vertices=49_000,
        scaled_edges=345_000,
    ),
    "AB": DatasetSpec(
        name="AB",
        long_name="arabic-2005",
        category="Web",
        paper_vertices=22_700_000,
        paper_edges=600_000_000,
        paper_size="5.0GB",
        paper_diameter=133,
        directed=True,
        exponent=1.9,
        dangling_fraction=0.18,
        scaled_vertices=12_000,
        scaled_edges=300_000,
    ),
    "UK": DatasetSpec(
        name="UK",
        long_name="uk-2005",
        category="Web",
        paper_vertices=39_600_000,
        paper_edges=800_000_000,
        paper_size="6.7GB",
        paper_diameter=45,
        directed=True,
        exponent=2.0,
        dangling_fraction=0.14,
        scaled_vertices=20_000,
        scaled_edges=400_000,
    ),
}

#: Table II row order.
DATASET_ORDER = ("WG", "CP", "AS", "LJ", "AB", "UK")


def dataset_names() -> tuple[str, ...]:
    """Names of the Table II datasets in paper order."""
    return DATASET_ORDER


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by its Table II abbreviation."""
    try:
        return PAPER_DATASETS[name]
    except KeyError:
        known = ", ".join(DATASET_ORDER)
        raise GraphError(f"unknown dataset {name!r}; known datasets: {known}") from None


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    weighted: bool = False,
) -> CSRGraph:
    """Generate the scaled synthetic stand-in for a Table II graph.

    Parameters
    ----------
    name:
        Table II abbreviation (``WG``, ``CP``, ``AS``, ``LJ``, ``AB``, ``UK``).
    scale:
        Multiplier on the already-scaled |V| and |E| (``1.0`` gives the
        default ~1/100 stand-in; tests use smaller values for speed).
    weighted:
        Attach ThunderRW-style random edge weights (see
        :func:`thunderrw_weights`), as the paper does for weighted GRWs.
    """
    spec = get_spec(name)
    if scale <= 0:
        raise GraphError(f"scale must be positive, got {scale}")
    n = max(16, int(round(spec.scaled_vertices * scale)))
    m = max(n, int(round(spec.scaled_edges * scale)))
    graph = powerlaw(
        num_vertices=n,
        num_edges=m,
        exponent=spec.exponent,
        dangling_fraction=spec.dangling_fraction if spec.directed else 0.0,
        directed=spec.directed,
        preferential=True,
        # Topology seeds are deliberately frozen on the historical
        # name-salt derivation: every recorded BENCH_*.json perf record
        # pins these exact stand-in graphs, and the name-salt already
        # gives each dataset a distinct stream, so re-deriving would
        # invalidate all cross-PR perf comparisons for zero gain.
        # repro: allow[RW102] frozen topology streams; BENCH_*.json records pin these graphs
        seed=seed ^ _stable_hash(name),
        name=name,
    )
    if weighted:
        graph = graph.with_weights(thunderrw_weights(graph, seed=seed))
    return graph


def thunderrw_weights(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Random edge weights following ThunderRW's generation method.

    ThunderRW (VLDB'21) assigns each edge an independent uniform random
    weight; the paper adopts the same procedure for its weighted GRW
    experiments.  We draw uniform reals in ``[1, 64)`` so weights span
    nearly two orders of magnitude, exercising the weighted samplers.

    The weight stream is a ``SeedSequence((seed, tag))`` child of the
    caller's seed (the tag keeps it disjoint from the topology stream),
    per the determinism contract (``repro lint`` RW102) — the previous
    ``seed ^ 0x7A3D`` xor-mix could collide with other derivations.
    """
    sequence = np.random.SeedSequence((normalize_seed(seed), _WEIGHT_STREAM_TAG))
    rng = np.random.default_rng(sequence)
    return rng.uniform(1.0, 64.0, size=graph.num_edges)


def assign_metapath_schema(
    graph: CSRGraph,
    num_types: int = 3,
    seed: int = 0,
) -> CSRGraph:
    """Attach a random vertex/edge type schema for MetaPath walks.

    Each vertex gets a type in ``[0, num_types)``; each edge is labeled
    with its *destination* vertex type, so a MetaPath pattern constrains
    which neighbors are admissible at every hop.  Walks terminate early
    when no admissible neighbor exists — the irregularity Figure 8d
    attributes MetaPath's larger scheduler win to.

    The schema stream is a ``SeedSequence((seed, tag))`` child of the
    caller's seed, replacing the historical ``seed ^ 0x5EED`` xor-mix
    (RW102: xor derivations can collide across call sites).
    """
    if num_types < 1:
        raise GraphError(f"num_types must be >= 1, got {num_types}")
    sequence = np.random.SeedSequence((normalize_seed(seed), _SCHEMA_STREAM_TAG))
    rng = np.random.default_rng(sequence)
    vertex_types = rng.integers(0, num_types, size=graph.num_vertices).astype(np.int16)
    edge_types = vertex_types[graph.col].astype(np.int16)
    return CSRGraph(
        row_ptr=graph.row_ptr,
        col=graph.col,
        weights=graph.weights,
        edge_types=edge_types,
        vertex_types=vertex_types,
        name=graph.name,
    )


def _stable_hash(text: str) -> int:
    """Deterministic small hash (Python's ``hash`` is salted per process)."""
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) & 0x7FFFFFFF
    return value
