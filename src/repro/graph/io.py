"""Serialization of CSR graphs.

Two formats:

* ``.npz`` — lossless round trip of all arrays (the native format).
* edge-list text — interoperability with SNAP-style ``src dst [weight]``
  files, so users with the real Table II datasets can load them directly.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builders import from_edges
from repro.graph.csr import CSRGraph

_NPZ_VERSION = 1


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save a graph to a ``.npz`` archive (lossless)."""
    arrays: dict[str, np.ndarray] = {
        "version": np.array([_NPZ_VERSION], dtype=np.int64),
        "row_ptr": graph.row_ptr,
        "col": graph.col,
        "name": np.array([graph.name]),
    }
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    if graph.edge_types is not None:
        arrays["edge_types"] = graph.edge_types
    if graph.vertex_types is not None:
        arrays["vertex_types"] = graph.vertex_types
    np.savez_compressed(Path(path), **arrays)


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph saved with :func:`save_npz`."""
    try:
        with np.load(Path(path), allow_pickle=False) as data:
            version = int(data["version"][0]) if "version" in data else -1
            if version != _NPZ_VERSION:
                raise GraphFormatError(
                    f"unsupported graph archive version {version} in {path}"
                )
            return CSRGraph(
                row_ptr=data["row_ptr"],
                col=data["col"],
                weights=data["weights"] if "weights" in data else None,
                edge_types=data["edge_types"] if "edge_types" in data else None,
                vertex_types=data["vertex_types"] if "vertex_types" in data else None,
                name=str(data["name"][0]) if "name" in data else "graph",
            )
    except (OSError, KeyError, ValueError) as exc:
        raise GraphFormatError(f"failed to load graph from {path}: {exc}") from exc


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a SNAP-style edge list: ``src dst [weight]`` per line."""
    with open(Path(path), "w", encoding="ascii") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        weights = graph.weights
        eid = 0
        for src in range(graph.num_vertices):
            for dst in graph.neighbors(src):
                if weights is None:
                    handle.write(f"{src}\t{int(dst)}\n")
                else:
                    handle.write(f"{src}\t{int(dst)}\t{weights[eid]:.8g}\n")
                eid += 1


def load_edge_list(
    path: str | os.PathLike,
    num_vertices: int | None = None,
    directed: bool = True,
    name: str | None = None,
) -> CSRGraph:
    """Load a SNAP-style edge list (``#`` lines are comments).

    A third column, when present on every edge, is read as edge weights.
    """
    sources: list[int] = []
    targets: list[int] = []
    weights: list[float] = []
    saw_weights = False
    with open(Path(path), "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{line_number}: expected 'src dst [weight]', got {line!r}"
                )
            try:
                sources.append(int(parts[0]))
                targets.append(int(parts[1]))
                if len(parts) == 3:
                    weights.append(float(parts[2]))
                    saw_weights = True
                elif saw_weights:
                    raise GraphFormatError(
                        f"{path}:{line_number}: mixed weighted and unweighted lines"
                    )
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{line_number}: {exc}") from exc
    if saw_weights and len(weights) != len(sources):
        raise GraphFormatError(f"{path}: mixed weighted and unweighted lines")
    edges = np.stack(
        [np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)], axis=1
    ) if sources else np.empty((0, 2), dtype=np.int64)
    return from_edges(
        edges,
        num_vertices=num_vertices,
        weights=np.asarray(weights) if saw_weights else None,
        directed=directed,
        name=name or Path(path).stem,
    )
