"""Synthetic graph generators.

Three families are used throughout the evaluation:

* :func:`rmat` — the recursive matrix model (Chakrabarti et al., SDM'04)
  the paper uses for Figure 10, with both the balanced initiator
  ``a=b=c=d=0.25`` and the Graph500 initiator ``a=0.57, b=c=0.19, d=0.05``.
* :func:`powerlaw` — a configuration-model-style generator with Zipf
  out-degrees, used to synthesize scaled stand-ins for the SNAP/WebGraph
  datasets in Table II (see :mod:`repro.graph.datasets`).
* small deterministic graphs (:func:`cycle_graph` etc.) for unit tests.

All generators take an explicit ``seed`` and are deterministic for a given
seed, which the test suite relies on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.builders import from_edges
from repro.graph.csr import CSRGraph

#: The Graph500 reference initiator probabilities used in Figure 10.
GRAPH500_INITIATOR = (0.57, 0.19, 0.19, 0.05)

#: The balanced (Erdos-Renyi-like) initiator used in Figure 10.
BALANCED_INITIATOR = (0.25, 0.25, 0.25, 0.25)


def rmat(
    scale: int,
    edge_factor: int = 16,
    initiator: tuple[float, float, float, float] = GRAPH500_INITIATOR,
    seed: int = 0,
    directed: bool = True,
    dedupe: bool = True,
    name: str | None = None,
) -> CSRGraph:
    """Generate an RMAT graph with ``2**scale`` vertices.

    Each of the ``edge_factor * 2**scale`` edges is placed by recursively
    descending ``scale`` levels of the adjacency matrix, choosing the
    quadrant at each level according to the initiator probabilities
    ``(a, b, c, d)``.

    Parameters
    ----------
    scale:
        Log2 of the vertex count (``SC16`` in the paper means scale 16).
    edge_factor:
        Edges per vertex before deduplication (paper uses 8 and 32).
    initiator:
        Quadrant probabilities ``(a, b, c, d)``; must sum to 1.
    directed:
        When ``False``, each generated edge is mirrored.
    dedupe:
        Drop duplicate edges (Graph500 reference behaviour).
    """
    if scale < 1:
        raise GraphError(f"scale must be >= 1, got {scale}")
    if edge_factor < 1:
        raise GraphError(f"edge_factor must be >= 1, got {edge_factor}")
    a, b, c, d = initiator
    total = a + b + c + d
    if not np.isclose(total, 1.0):
        raise GraphError(f"initiator probabilities must sum to 1, got {total}")
    if min(initiator) < 0:
        raise GraphError("initiator probabilities must be non-negative")

    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Descend the recursion levels for all edges at once.  At each level a
    # uniform draw selects the quadrant: a -> (0,0), b -> (0,1), c -> (1,0),
    # d -> (1,1); row and column bits accumulate most-significant first.
    for _ in range(scale):
        draw = rng.random(m)
        row_bit = (draw >= a + b).astype(np.int64)
        col_bit = ((draw >= a) & (draw < a + b) | (draw >= a + b + c)).astype(np.int64)
        src = (src << 1) | row_bit
        dst = (dst << 1) | col_bit
    edges = np.stack([src, dst], axis=1)
    label = name or f"rmat-sc{scale}-ef{edge_factor}"
    return from_edges(
        edges,
        num_vertices=n,
        directed=directed,
        dedupe=dedupe,
        name=label,
    )


def powerlaw(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.1,
    dangling_fraction: float = 0.0,
    directed: bool = True,
    preferential: bool = True,
    max_in_share: float | None = 0.01,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Generate a graph with Zipf-distributed out-degrees.

    Out-degrees follow a truncated power law with the given ``exponent``;
    edge targets are drawn preferentially (proportional to an independent
    Zipf popularity) or uniformly.  A ``dangling_fraction`` of vertices is
    forced to zero out-degree, reproducing the early-termination structure
    of directed web/citation graphs that drives the paper's scheduler
    results (Section VIII-D notes ~80% of real graphs are directed).

    The realized edge count approximates ``num_edges`` (duplicates are
    removed).

    ``max_in_share`` caps the fraction of in-edge mass any single vertex
    attracts (water-filling the clipped popularity back onto the rest).
    Full-scale graphs spread their hubs over millions of vertices, so the
    top vertex attracts well under 1% of traffic; an *unclipped* Zipf
    distribution over a scaled-down vertex set would concentrate ~10% on
    one vertex and hot-spot a single memory channel — an artifact of
    downscaling, not a property of the Table II datasets.
    """
    if num_vertices < 1:
        raise GraphError("num_vertices must be >= 1")
    if num_edges < 0:
        raise GraphError("num_edges must be >= 0")
    if not 0.0 <= dangling_fraction < 1.0:
        raise GraphError(f"dangling_fraction must be in [0, 1), got {dangling_fraction}")
    if exponent <= 1.0:
        raise GraphError(f"exponent must exceed 1, got {exponent}")
    if dangling_fraction > 0.0 and not directed:
        raise GraphError("dangling_fraction requires a directed graph")

    rng = np.random.default_rng(seed)
    n = np.int64(num_vertices)
    # Zipf-shaped endpoint popularities.  In-degree carries the full skew
    # (hubs attract edges); out-degree skew is softened to half the tail
    # exponent, matching real web/citation graphs whose out-degrees are
    # far narrower than their in-degrees.
    src_ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    rng.shuffle(src_ranks)
    src_weight = src_ranks ** (-(exponent - 1.0) * 0.5)
    if preferential:
        dst_ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
        rng.shuffle(dst_ranks)
        dst_weight = dst_ranks ** (-(exponent - 1.0))
        dst_p = dst_weight / dst_weight.sum()
        if max_in_share is not None:
            if not 0.0 < max_in_share <= 1.0:
                raise GraphError(f"max_in_share must be in (0, 1], got {max_in_share}")
            # Tiny graphs cannot honor a small cap (n*cap must exceed 1);
            # relax toward uniform rather than failing.
            feasible_cap = max(max_in_share, 2.0 / num_vertices)
            if feasible_cap < 1.0:
                dst_p = _clip_distribution(dst_p, feasible_cap)
    else:
        dst_p = None

    dangling = np.empty(0, dtype=np.int64)
    if dangling_fraction > 0.0:
        num_dangling = int(round(dangling_fraction * num_vertices))
        if dst_p is not None:
            # Dangling vertices are the *unpopular* tail (crawl-frontier
            # pages, freshly added users): they have few in-links, so a
            # walk dies with a few-percent hazard per hop rather than
            # immediately — mean walk lengths land in the tens of hops,
            # which is what the paper's early-termination analysis shows.
            dangling = np.argsort(dst_p)[:num_dangling].astype(np.int64)
        else:
            dangling = rng.choice(num_vertices, size=num_dangling, replace=False)
        src_weight[dangling] = 0.0
    src_p = src_weight / src_weight.sum()

    def _draw_dst(count: int) -> np.ndarray:
        if dst_p is None:
            return rng.integers(0, num_vertices, size=count, dtype=np.int64)
        return rng.choice(num_vertices, size=count, p=dst_p)

    # Seed round: every non-dangling vertex gets one out-edge, so the
    # realized dangling fraction stays pinned to the requested one.
    non_dangling = np.setdiff1d(np.arange(num_vertices, dtype=np.int64), dangling)
    seed_dst = _draw_dst(non_dangling.size)
    keep = non_dangling != seed_dst
    unique_keys = np.unique(non_dangling[keep] * n + seed_dst[keep])

    # Top-up rounds: duplicate edges collapse under dedup, so keep drawing
    # until the unique count reaches the target (or growth stalls on tiny
    # dense graphs where the target is unreachable).
    target = num_edges
    for _ in range(30):
        missing = target - unique_keys.size
        if missing <= 0:
            break
        batch = int(missing * 1.5) + 16
        src = rng.choice(num_vertices, size=batch, p=src_p)
        dst = _draw_dst(batch)
        keep = src != dst  # no self loops
        keys = src[keep].astype(np.int64) * n + dst[keep]
        merged = np.union1d(unique_keys, keys)
        if merged.size == unique_keys.size:
            break  # saturated: every possible edge already present
        unique_keys = merged
    if unique_keys.size > target:
        unique_keys = rng.choice(unique_keys, size=target, replace=False)

    edges = np.stack([unique_keys // n, unique_keys % n], axis=1)
    label = name or f"powerlaw-n{num_vertices}"
    return from_edges(edges, num_vertices=num_vertices, directed=directed, name=label)


def _clip_distribution(p: np.ndarray, cap: float) -> np.ndarray:
    """Clip a probability vector at ``cap`` and redistribute the excess
    proportionally over unclipped entries (water-filling)."""
    if cap * p.size < 1.0:
        raise GraphError(
            f"cap {cap} is infeasible for a distribution over {p.size} entries"
        )
    p = p.copy()
    for _ in range(64):
        over = p > cap
        excess = float((p[over] - cap).sum())
        if excess <= 1e-15:
            break
        p[over] = cap
        under = ~over
        headroom = p[under]
        p[under] = headroom + excess * headroom / headroom.sum()
    return p / p.sum()


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    directed: bool = True,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Uniform random graph with approximately ``num_edges`` edges."""
    if num_vertices < 1:
        raise GraphError("num_vertices must be >= 1")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    keep = src != dst
    edges = np.stack([src[keep], dst[keep]], axis=1)
    label = name or f"er-n{num_vertices}"
    return from_edges(edges, num_vertices=num_vertices, directed=directed, dedupe=True, name=label)


def cycle_graph(num_vertices: int, name: str = "cycle") -> CSRGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    if num_vertices < 1:
        raise GraphError("num_vertices must be >= 1")
    src = np.arange(num_vertices, dtype=np.int64)
    dst = (src + 1) % num_vertices
    return from_edges(np.stack([src, dst], axis=1), num_vertices=num_vertices, name=name)


def path_graph(num_vertices: int, name: str = "path") -> CSRGraph:
    """Directed path ``0 -> 1 -> ... -> n-1`` (last vertex dangles)."""
    if num_vertices < 1:
        raise GraphError("num_vertices must be >= 1")
    src = np.arange(num_vertices - 1, dtype=np.int64)
    dst = src + 1
    return from_edges(np.stack([src, dst], axis=1), num_vertices=num_vertices, name=name)


def star_graph(num_leaves: int, name: str = "star") -> CSRGraph:
    """Hub vertex 0 pointing at ``num_leaves`` dangling leaves."""
    if num_leaves < 1:
        raise GraphError("num_leaves must be >= 1")
    src = np.zeros(num_leaves, dtype=np.int64)
    dst = np.arange(1, num_leaves + 1, dtype=np.int64)
    return from_edges(np.stack([src, dst], axis=1), num_vertices=num_leaves + 1, name=name)


def complete_graph(num_vertices: int, name: str = "complete") -> CSRGraph:
    """Complete directed graph without self loops."""
    if num_vertices < 1:
        raise GraphError("num_vertices must be >= 1")
    src, dst = np.nonzero(~np.eye(num_vertices, dtype=bool))
    return from_edges(
        np.stack([src.astype(np.int64), dst.astype(np.int64)], axis=1),
        num_vertices=num_vertices,
        name=name,
    )
