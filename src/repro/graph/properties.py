"""Structural graph statistics used by the evaluation harness.

These back Table II (dataset catalog: |V|, |E|, size, diameter) and the
motivation analysis (degree skew and dangling fraction drive workload
imbalance; working-set size relative to on-chip SRAM drives the FastRW
cache collapse in Figure 3a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of a graph's out-degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float
    std: float
    gini: float
    dangling_fraction: float

    def is_skewed(self, threshold: float = 0.5) -> bool:
        """Whether the distribution is heavy-tailed by Gini coefficient."""
        return self.gini >= threshold


def degree_statistics(graph: CSRGraph) -> DegreeStatistics:
    """Compute out-degree summary statistics."""
    degrees = graph.degrees()
    if degrees.size == 0:
        raise GraphError("cannot summarize an empty graph")
    return DegreeStatistics(
        minimum=int(degrees.min()),
        maximum=int(degrees.max()),
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        std=float(degrees.std()),
        gini=gini_coefficient(degrees),
        dangling_fraction=graph.dangling_fraction(),
    )


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (0 = uniform, 1 = skewed)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    n = values.size
    if n == 0:
        raise GraphError("gini coefficient of an empty array is undefined")
    total = values.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (ranks * values).sum() / (n * total)) - (n + 1) / n)


def estimate_diameter(graph: CSRGraph, num_sources: int = 8, seed: int = 0) -> int:
    """Lower-bound estimate of the diameter via BFS from sampled sources.

    Exact diameters are infeasible for the larger synthetic graphs; a
    multi-source BFS sweep gives the same "diameter class" signal Table II
    communicates (tens of hops for social/web graphs, ~100+ for crawl
    graphs with long tendrils).
    """
    n = graph.num_vertices
    if n == 0:
        raise GraphError("cannot estimate the diameter of an empty graph")
    rng = np.random.default_rng(seed)
    # Prefer sources with outgoing edges so BFS actually explores.
    candidates = np.nonzero(graph.degrees() > 0)[0]
    if candidates.size == 0:
        return 0
    sources = rng.choice(candidates, size=min(num_sources, candidates.size), replace=False)
    best = 0
    for source in sources:
        best = max(best, _bfs_eccentricity(graph, int(source)))
    return best


def _bfs_eccentricity(graph: CSRGraph, source: int) -> int:
    """Largest finite BFS distance from ``source``."""
    n = graph.num_vertices
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    depth = 0
    row_ptr, col = graph.row_ptr, graph.col
    while frontier:
        next_frontier: list[int] = []
        for v in frontier:
            for u in col[row_ptr[v] : row_ptr[v + 1]]:
                u = int(u)
                if dist[u] < 0:
                    dist[u] = depth + 1
                    next_frontier.append(u)
        frontier = next_frontier
        depth += 1
    return int(dist.max())


def largest_out_component_fraction(graph: CSRGraph, seed: int = 0) -> float:
    """Fraction of vertices reachable from the highest-out-degree vertex.

    A cheap connectivity proxy: random-walk workloads mostly live inside
    the giant component, so datasets are generated to keep this high.
    """
    if graph.num_vertices == 0:
        raise GraphError("empty graph")
    start = int(np.argmax(graph.degrees()))
    n = graph.num_vertices
    seen = np.zeros(n, dtype=bool)
    seen[start] = True
    stack = [start]
    row_ptr, col = graph.row_ptr, graph.col
    while stack:
        v = stack.pop()
        for u in col[row_ptr[v] : row_ptr[v + 1]]:
            u = int(u)
            if not seen[u]:
                seen[u] = True
                stack.append(u)
    return float(seen.sum()) / n


def working_set_bytes(graph: CSRGraph, rp_entry_bits: int = 64) -> int:
    """Bytes of row-pointer state a cache-based accelerator must hold.

    FastRW's collapse threshold (Figure 3a) is whether this fits in the
    device's on-chip SRAM.
    """
    return graph.row_pointer_bytes(rp_entry_bits)


def degree_histogram(graph: CSRGraph, in_degree: bool = False) -> np.ndarray:
    """Counts of vertices per degree value (index = degree)."""
    if in_degree:
        degrees = np.bincount(graph.col, minlength=graph.num_vertices)
    else:
        degrees = graph.degrees()
    if degrees.size == 0:
        raise GraphError("cannot histogram an empty graph")
    return np.bincount(degrees)


def degree_ccdf(graph: CSRGraph, in_degree: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF of the degree distribution.

    Returns ``(degrees, P(D >= degree))`` over the degrees present; the
    standard view for eyeballing power-law tails.
    """
    histogram = degree_histogram(graph, in_degree=in_degree)
    degrees = np.nonzero(histogram)[0]
    counts = histogram[degrees].astype(np.float64)
    total = counts.sum()
    ccdf = np.cumsum(counts[::-1])[::-1] / total
    return degrees, ccdf


def fit_powerlaw_exponent(
    graph: CSRGraph, in_degree: bool = True, minimum_degree: int = 2
) -> float:
    """Maximum-likelihood (Hill) estimate of the degree tail exponent.

    ``alpha = 1 + n / sum(ln(d_i / (d_min - 1/2)))`` over degrees
    ``>= minimum_degree`` (Clauset-Shalizi-Newman's discrete
    approximation).  Used by tests to confirm the synthetic Table II
    stand-ins carry the heavy tail the catalog promises.
    """
    if minimum_degree < 1:
        raise GraphError(f"minimum_degree must be >= 1, got {minimum_degree}")
    if in_degree:
        degrees = np.bincount(graph.col, minlength=graph.num_vertices)
    else:
        degrees = np.asarray(graph.degrees())
    tail = degrees[degrees >= minimum_degree].astype(np.float64)
    if tail.size < 10:
        raise GraphError(
            f"only {tail.size} vertices have degree >= {minimum_degree}; "
            "not enough tail to fit"
        )
    return float(1.0 + tail.size / np.log(tail / (minimum_degree - 0.5)).sum())
