"""Constructing :class:`~repro.graph.csr.CSRGraph` from common inputs.

The builders accept edge lists, dense adjacency matrices and adjacency
dictionaries.  They all normalise to CSR with vertices ``0..n-1`` and
deterministic neighbor order (sorted by destination unless asked to keep
input order), which keeps simulations reproducible run to run.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


def validate_edge_weights(
    weights: np.ndarray,
    src: np.ndarray | None = None,
    dst: np.ndarray | None = None,
) -> None:
    """Reject negative, zero, NaN or infinite edge weights up front.

    ``CSRGraph`` validates its weight array too, but by then the edges
    have been reordered, so the error cannot name the offending *input*
    edge.  The builders (and the dynamic-graph update path) call this
    before any reordering; the message points at the first bad edge so a
    corrupt ingest fails loudly instead of producing alias tables built
    from garbage.
    """
    weights = np.asarray(weights)
    if weights.size == 0:
        return
    bad = ~np.isfinite(weights) | (weights <= 0)
    if not bad.any():
        return
    index = int(np.nonzero(bad)[0][0])
    value = float(weights[index]) if np.isfinite(weights[index]) else weights[index]
    where = f"edge {index}"
    if src is not None and dst is not None:
        where = f"edge {index} ({int(src[index])} -> {int(dst[index])})"
    raise GraphError(
        f"edge weights must be strictly positive and finite; {where} has "
        f"weight {value}"
    )


def from_edges(
    edges: Iterable[tuple[int, int]],
    num_vertices: int | None = None,
    weights: Sequence[float] | None = None,
    edge_types: Sequence[int] | None = None,
    vertex_types: Sequence[int] | None = None,
    directed: bool = True,
    dedupe: bool = False,
    sort_neighbors: bool = True,
    name: str = "graph",
) -> CSRGraph:
    """Build a CSR graph from an iterable of ``(src, dst)`` pairs.

    Parameters
    ----------
    edges:
        Directed edge pairs.  With ``directed=False`` each pair also adds
        the reverse edge (weights/types are duplicated onto it).
    num_vertices:
        Total vertex count; inferred as ``max id + 1`` when omitted.
    weights, edge_types:
        Optional per-edge attributes aligned with ``edges``.
    dedupe:
        Drop duplicate ``(src, dst)`` pairs, keeping the first occurrence.
    sort_neighbors:
        Sort each neighbor list by destination id for determinism.
    """
    edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if edge_array.size == 0:
        edge_array = edge_array.reshape(0, 2)
    if edge_array.ndim != 2 or edge_array.shape[1] != 2:
        raise GraphError("edges must be a sequence of (src, dst) pairs")
    src = edge_array[:, 0].astype(np.int64)
    dst = edge_array[:, 1].astype(np.int64)

    weight_array = None if weights is None else np.asarray(weights, dtype=np.float64)
    type_array = None if edge_types is None else np.asarray(edge_types, dtype=np.int16)
    if weight_array is not None and weight_array.size != src.size:
        raise GraphError("weights must align with edges")
    if weight_array is not None:
        validate_edge_weights(weight_array, src, dst)
    if type_array is not None and type_array.size != src.size:
        raise GraphError("edge_types must align with edges")

    if not directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if weight_array is not None:
            weight_array = np.concatenate([weight_array, weight_array])
        if type_array is not None:
            type_array = np.concatenate([type_array, type_array])

    if src.size and (src.min() < 0 or dst.min() < 0):
        raise GraphError("vertex ids must be non-negative")

    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1) if src.size else 0
    elif src.size and max(src.max(), dst.max()) >= num_vertices:
        raise GraphError(
            f"edge endpoint exceeds num_vertices={num_vertices}: "
            f"max id {int(max(src.max(), dst.max()))}"
        )

    if dedupe and src.size:
        keys = src * np.int64(num_vertices if num_vertices else 1) + dst
        _, first = np.unique(keys, return_index=True)
        first.sort()
        src, dst = src[first], dst[first]
        if weight_array is not None:
            weight_array = weight_array[first]
        if type_array is not None:
            type_array = type_array[first]

    order = np.argsort(src, kind="stable")
    if sort_neighbors and src.size:
        # Sort by (src, dst) so each neighbor list is ascending.
        order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    if weight_array is not None:
        weight_array = weight_array[order]
    if type_array is not None:
        type_array = type_array[order]

    row_ptr = np.zeros(num_vertices + 1, dtype=np.int64)
    if src.size:
        counts = np.bincount(src, minlength=num_vertices)
        np.cumsum(counts, out=row_ptr[1:])

    vtype_array = None if vertex_types is None else np.asarray(vertex_types, dtype=np.int16)
    return CSRGraph(
        row_ptr=row_ptr,
        col=dst,
        weights=weight_array,
        edge_types=type_array,
        vertex_types=vtype_array,
        name=name,
    )


def from_adjacency(matrix: np.ndarray, name: str = "graph") -> CSRGraph:
    """Build a CSR graph from a dense adjacency matrix.

    Non-zero entries become edges; if the matrix is not strictly 0/1 the
    entry values become edge weights (mirroring Figure 2's adjacency view).
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GraphError("adjacency matrix must be square")
    src, dst = np.nonzero(matrix)
    values = matrix[src, dst].astype(np.float64)
    weighted = bool(values.size) and not np.allclose(values, 1.0)
    return from_edges(
        np.stack([src, dst], axis=1),
        num_vertices=matrix.shape[0],
        weights=values if weighted else None,
        name=name,
    )


def from_adjacency_dict(
    adjacency: Mapping[int, Sequence[int]],
    num_vertices: int | None = None,
    name: str = "graph",
) -> CSRGraph:
    """Build a CSR graph from ``{src: [dst, ...]}`` mappings."""
    edges: list[tuple[int, int]] = []
    for src, neighbors in adjacency.items():
        for dst in neighbors:
            edges.append((int(src), int(dst)))
    if num_vertices is None and adjacency:
        max_key = max(int(k) for k in adjacency)
        max_val = max((int(v) for vs in adjacency.values() for v in vs), default=-1)
        num_vertices = max(max_key, max_val) + 1
    return from_edges(edges, num_vertices=num_vertices, name=name)


def paper_example_graph() -> CSRGraph:
    """The five-vertex example graph from Figure 2 of the paper.

    Vertices are ``v1..v5`` mapped to ids ``0..4``.  ``RP = [0, 3, 7, 9, ...]``
    in the paper uses 1-based labels; the shape here matches the figure:
    ``v1 -> {v2, v4, v5}``, ``v2 -> {v1, v4, v5, ...}`` etc.
    """
    adjacency = {
        0: [1, 3, 4],  # v1 -> v2, v4, v5
        1: [0, 3, 4],  # v2 -> v1, v4, v5
        2: [],  # v3 has no outgoing edges (early termination example)
        3: [1, 4],  # v4 -> v2, v5
        4: [0, 1, 2],  # v5 -> v1, v2, v3
    }
    return from_adjacency_dict(adjacency, num_vertices=5, name="paper-example")
