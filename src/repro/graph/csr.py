"""Compressed sparse row (CSR) graph representation.

This is the substrate every other subsystem builds on.  It mirrors the
layout in Figure 2 of the paper: a row-pointer array ``RP`` of length
``|V| + 1`` and a column-list array ``CL`` of length ``|E|``, so that the
neighbors of vertex ``v`` occupy ``CL[RP[v]:RP[v+1]]``.  Optional parallel
arrays carry edge weights (weighted GRWs such as DeepWalk on weighted
graphs), edge types (MetaPath), and vertex types (MetaPath node schemas).

The class is immutable after construction; all mutation-style operations
(``reverse``, ``with_weights`` ...) return new instances.  Arrays are stored
as numpy with fixed dtypes so that memory footprints and address arithmetic
in :mod:`repro.memory.layout` are well defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import GraphError

_INDEX_DTYPE = np.int64
_WEIGHT_DTYPE = np.float64
_TYPE_DTYPE = np.int16


@dataclass(frozen=True, eq=False)
class CSRGraph:
    """An immutable directed graph in CSR form.

    Parameters
    ----------
    row_ptr:
        ``int64`` array of length ``num_vertices + 1``; monotonically
        non-decreasing, ``row_ptr[0] == 0`` and ``row_ptr[-1] == num_edges``.
    col:
        ``int64`` array of neighbor vertex ids, length ``num_edges``.
    weights:
        Optional ``float64`` array of positive edge weights aligned with
        ``col``.  ``None`` means the graph is unweighted.
    edge_types:
        Optional ``int16`` array of edge-type labels aligned with ``col``
        (used by MetaPath walks).
    vertex_types:
        Optional ``int16`` array of vertex-type labels, length
        ``num_vertices`` (used by MetaPath walks).
    name:
        Human-readable label used in benchmark reports.
    """

    row_ptr: np.ndarray
    col: np.ndarray
    weights: np.ndarray | None = None
    edge_types: np.ndarray | None = None
    vertex_types: np.ndarray | None = None
    name: str = "graph"
    _degrees: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    _cols_sorted: bool = field(init=False, repr=False, compare=False, default=False)

    def __post_init__(self) -> None:
        row_ptr = np.ascontiguousarray(self.row_ptr, dtype=_INDEX_DTYPE)
        col = np.ascontiguousarray(self.col, dtype=_INDEX_DTYPE)
        object.__setattr__(self, "row_ptr", row_ptr)
        object.__setattr__(self, "col", col)
        if self.weights is not None:
            object.__setattr__(
                self, "weights", np.ascontiguousarray(self.weights, dtype=_WEIGHT_DTYPE)
            )
        if self.edge_types is not None:
            object.__setattr__(
                self, "edge_types", np.ascontiguousarray(self.edge_types, dtype=_TYPE_DTYPE)
            )
        if self.vertex_types is not None:
            object.__setattr__(
                self, "vertex_types", np.ascontiguousarray(self.vertex_types, dtype=_TYPE_DTYPE)
            )
        self._validate()
        degrees = np.diff(row_ptr)
        object.__setattr__(self, "_degrees", degrees)
        object.__setattr__(self, "_cols_sorted", self._check_cols_sorted())
        for array in (row_ptr, col, self.weights, self.edge_types, self.vertex_types, degrees):
            if array is not None:
                array.setflags(write=False)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.row_ptr.ndim != 1 or self.col.ndim != 1:
            raise GraphError("row_ptr and col must be one-dimensional arrays")
        if self.row_ptr.size == 0:
            raise GraphError("row_ptr must have at least one entry")
        if self.row_ptr[0] != 0:
            raise GraphError(f"row_ptr[0] must be 0, got {int(self.row_ptr[0])}")
        if np.any(np.diff(self.row_ptr) < 0):
            raise GraphError("row_ptr must be monotonically non-decreasing")
        if int(self.row_ptr[-1]) != self.col.size:
            raise GraphError(
                f"row_ptr[-1] ({int(self.row_ptr[-1])}) must equal the number of "
                f"edges ({self.col.size})"
            )
        n = self.num_vertices
        if self.col.size and (self.col.min() < 0 or self.col.max() >= n):
            raise GraphError(
                f"column indices must lie in [0, {n}); found range "
                f"[{int(self.col.min())}, {int(self.col.max())}]"
            )
        if self.weights is not None:
            if self.weights.shape != self.col.shape:
                raise GraphError("weights must align with col")
            if self.weights.size and not np.all(np.isfinite(self.weights)):
                raise GraphError("weights must be finite")
            if self.weights.size and self.weights.min() <= 0:
                raise GraphError("weights must be strictly positive")
        if self.edge_types is not None and self.edge_types.shape != self.col.shape:
            raise GraphError("edge_types must align with col")
        if self.vertex_types is not None and self.vertex_types.shape != (n,):
            raise GraphError("vertex_types must have one entry per vertex")

    def _check_cols_sorted(self) -> bool:
        """Whether every neighbor list is ascending (one vectorized pass)."""
        if self.col.size < 2:
            return True
        non_decreasing = np.diff(self.col) >= 0
        # Descents are allowed exactly where a new neighbor list starts.
        segment_starts = self.row_ptr[1:-1]
        breaks = np.zeros(self.col.size - 1, dtype=bool)
        interior = segment_starts[(segment_starts > 0) & (segment_starts < self.col.size)]
        breaks[interior - 1] = True
        return bool(np.all(non_decreasing | breaks))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self.row_ptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self.col.size

    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries edge weights."""
        return self.weights is not None

    @property
    def has_edge_types(self) -> bool:
        """Whether the graph carries edge-type labels (MetaPath)."""
        return self.edge_types is not None

    def degree(self, vertex: int) -> int:
        """Out-degree of ``vertex``."""
        self._check_vertex(vertex)
        return int(self._degrees[vertex])

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (read-only ``int64`` array)."""
        return self._degrees

    def neighbors(self, vertex: int) -> np.ndarray:
        """Neighbor list of ``vertex`` as a read-only array view."""
        self._check_vertex(vertex)
        return self.col[self.row_ptr[vertex] : self.row_ptr[vertex + 1]]

    def neighbor_weights(self, vertex: int) -> np.ndarray:
        """Edge weights of ``vertex``'s out-edges.

        For unweighted graphs, returns a unit-weight array of matching
        length so samplers can treat both cases uniformly.
        """
        self._check_vertex(vertex)
        lo, hi = int(self.row_ptr[vertex]), int(self.row_ptr[vertex + 1])
        if self.weights is None:
            return np.ones(hi - lo, dtype=_WEIGHT_DTYPE)
        return self.weights[lo:hi]

    def neighbor_edge_types(self, vertex: int) -> np.ndarray:
        """Edge-type labels of ``vertex``'s out-edges."""
        if self.edge_types is None:
            raise GraphError("graph has no edge types")
        self._check_vertex(vertex)
        return self.edge_types[self.row_ptr[vertex] : self.row_ptr[vertex + 1]]

    @property
    def cols_sorted(self) -> bool:
        """Whether every neighbor list is ascending (checked once at
        construction); enables O(log d) adjacency probes."""
        return self._cols_sorted

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the directed edge ``src -> dst`` exists.

        O(log d) binary search when neighbor lists are sorted (the default
        for every builder in this repo), O(d) scan otherwise.  GRW
        rejection sampling (Node2Vec) calls this on the hot path; note the
        samplers still charge the cost models the honest O(d) bounded-scan
        read count the hardware performs, independent of how this lookup
        is implemented.
        """
        self._check_vertex(src)
        lo, hi = int(self.row_ptr[src]), int(self.row_ptr[src + 1])
        if lo == hi:
            return False
        if self._cols_sorted:
            pos = lo + int(np.searchsorted(self.col[lo:hi], dst))
            return pos < hi and int(self.col[pos]) == dst
        return bool(np.any(self.col[lo:hi] == dst))

    def dangling_vertices(self) -> np.ndarray:
        """Ids of vertices with zero out-degree (walks terminate there)."""
        return np.nonzero(self._degrees == 0)[0]

    def dangling_fraction(self) -> float:
        """Fraction of vertices with zero out-degree."""
        if self.num_vertices == 0:
            return 0.0
        return float(np.count_nonzero(self._degrees == 0)) / self.num_vertices

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all directed edges as ``(src, dst)`` pairs."""
        for v in range(self.num_vertices):
            for u in self.neighbors(v):
                yield v, int(u)

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise GraphError(
                f"vertex {vertex} out of range for graph with {self.num_vertices} vertices"
            )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def with_weights(self, weights: Sequence[float] | np.ndarray) -> "CSRGraph":
        """Return a copy of this graph carrying the given edge weights."""
        return CSRGraph(
            row_ptr=self.row_ptr,
            col=self.col,
            weights=np.asarray(weights, dtype=_WEIGHT_DTYPE),
            edge_types=self.edge_types,
            vertex_types=self.vertex_types,
            name=self.name,
        )

    def with_name(self, name: str) -> "CSRGraph":
        """Return a copy of this graph with a different display name."""
        return CSRGraph(
            row_ptr=self.row_ptr,
            col=self.col,
            weights=self.weights,
            edge_types=self.edge_types,
            vertex_types=self.vertex_types,
            name=name,
        )

    def reverse(self) -> "CSRGraph":
        """Return the transpose graph (every edge reversed).

        Weights and edge types follow their edges; vertex types are kept.
        """
        n = self.num_vertices
        in_degree = np.bincount(self.col, minlength=n)
        new_row_ptr = np.zeros(n + 1, dtype=_INDEX_DTYPE)
        np.cumsum(in_degree, out=new_row_ptr[1:])
        new_col = np.empty(self.num_edges, dtype=_INDEX_DTYPE)
        new_weights = np.empty(self.num_edges, dtype=_WEIGHT_DTYPE) if self.is_weighted else None
        new_types = (
            np.empty(self.num_edges, dtype=_TYPE_DTYPE) if self.edge_types is not None else None
        )
        cursor = new_row_ptr[:-1].copy()
        sources = np.repeat(np.arange(n, dtype=_INDEX_DTYPE), np.diff(self.row_ptr))
        for eid in range(self.num_edges):
            dst = self.col[eid]
            slot = cursor[dst]
            new_col[slot] = sources[eid]
            if new_weights is not None:
                new_weights[slot] = self.weights[eid]
            if new_types is not None:
                new_types[slot] = self.edge_types[eid]
            cursor[dst] += 1
        return CSRGraph(
            row_ptr=new_row_ptr,
            col=new_col,
            weights=new_weights,
            edge_types=new_types,
            vertex_types=self.vertex_types,
            name=f"{self.name}-reversed",
        )

    # ------------------------------------------------------------------
    # Size accounting (used by the memory layout and FastRW cache model)
    # ------------------------------------------------------------------
    def row_pointer_bytes(self, rp_entry_bits: int = 64) -> int:
        """Size of the row-pointer array at the given per-entry width.

        The paper's RP entry is configurable (Table I): 64 bits for
        uniform/rejection sampling, 128 for reservoir, 256 for alias
        tables.
        """
        if rp_entry_bits % 8:
            raise GraphError(f"rp_entry_bits must be a multiple of 8, got {rp_entry_bits}")
        return self.num_vertices * rp_entry_bits // 8

    def column_list_bytes(self, entry_bits: int = 64) -> int:
        """Size of the column-list array at the given per-entry width."""
        if entry_bits % 8:
            raise GraphError(f"entry_bits must be a multiple of 8, got {entry_bits}")
        return self.num_edges * entry_bits // 8

    def total_bytes(self, rp_entry_bits: int = 64, cl_entry_bits: int = 64) -> int:
        """Total CSR footprint in bytes."""
        return self.row_pointer_bytes(rp_entry_bits) + self.column_list_bytes(cl_entry_bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = []
        if self.is_weighted:
            flags.append("weighted")
        if self.has_edge_types:
            flags.append("typed")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"CSRGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}{suffix})"
        )
