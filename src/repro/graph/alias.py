"""Alias-table construction (Walker's method) for O(1) weighted sampling.

DeepWalk on weighted graphs uses alias sampling (paper Table I): each
vertex's neighbor list carries an alias table so a neighbor can be drawn
with two random numbers and one table lookup.  The paper extends the CSR
row-pointer entry to 256 bits to store the alias-table pointer and size;
our memory layout mirrors that (see :mod:`repro.memory.layout`).

The tables here are built with Vose's stable O(d) algorithm per vertex and
stored flat, aligned with the CSR column list, so the simulated hardware
can fetch ``(prob, alias)`` with the same address arithmetic it uses for
the neighbor itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError, SamplingError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True, eq=False)
class AliasTable:
    """Flat alias tables for every vertex of a graph.

    Attributes
    ----------
    prob:
        ``float64`` array aligned with the CSR column list.  ``prob[RP[v]+i]``
        is the acceptance probability of slot ``i`` in vertex ``v``'s table.
    alias:
        ``int64`` array aligned the same way; ``alias[RP[v]+i]`` is the
        *within-neighborhood* index used when slot ``i`` rejects.
    """

    prob: np.ndarray
    alias: np.ndarray

    def __post_init__(self) -> None:
        if self.prob.shape != self.alias.shape:
            raise GraphError("prob and alias must align")
        self.prob.setflags(write=False)
        self.alias.setflags(write=False)

    def slot(self, offset: int, index: int) -> tuple[float, int]:
        """Return ``(prob, alias)`` for table slot ``index`` of the
        neighborhood starting at CSR offset ``offset``."""
        return float(self.prob[offset + index]), int(self.alias[offset + index])

    def sample_index(self, offset: int, degree: int, u1: float, u2: float) -> int:
        """Draw a within-neighborhood index using two uniforms in [0, 1).

        This is the exact operation the hardware Sampling module performs:
        ``u1`` picks the slot, ``u2`` accepts or redirects to the alias.
        """
        if degree <= 0:
            raise SamplingError("cannot alias-sample from an empty neighborhood")
        slot = min(int(u1 * degree), degree - 1)
        prob, alias = self.slot(offset, slot)
        return slot if u2 < prob else alias

    @property
    def num_slots(self) -> int:
        """Total number of table slots (== number of edges)."""
        return self.prob.size

    def table_bytes(self, entry_bits: int = 64) -> int:
        """Memory footprint of the flat tables at the given entry width."""
        return self.num_slots * entry_bits // 8


def build_alias_slots(weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Build one alias table for a single weight vector (Vose's algorithm).

    Returns ``(prob, alias)`` arrays of the same length as ``weights``.
    Raises :class:`SamplingError` for empty or non-positive weights.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.size
    if n == 0:
        raise SamplingError("cannot build an alias table for an empty weight vector")
    if np.any(weights <= 0) or not np.all(np.isfinite(weights)):
        raise SamplingError("alias table weights must be positive and finite")

    scaled = weights * (n / weights.sum())
    prob = np.ones(n, dtype=np.float64)
    alias = np.arange(n, dtype=np.int64)

    small = [i for i in range(n) if scaled[i] < 1.0]
    large = [i for i in range(n) if scaled[i] >= 1.0]
    scaled = scaled.copy()
    while small and large:
        lo = small.pop()
        hi = large.pop()
        prob[lo] = scaled[lo]
        alias[lo] = hi
        scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0
        if scaled[hi] < 1.0:
            small.append(hi)
        else:
            large.append(hi)
    # Whatever remains is numerically ~1.0.
    for rest in small + large:
        prob[rest] = 1.0
        alias[rest] = rest
    return prob, alias


def build_alias_table(graph: CSRGraph) -> AliasTable:
    """Build flat per-vertex alias tables for a graph.

    Unweighted graphs get uniform tables (every slot accepts), which keeps
    the DeepWalk datapath identical for both cases, exactly as the
    hardware's template-based graph representation does.
    """
    prob = np.ones(graph.num_edges, dtype=np.float64)
    if not graph.is_weighted:
        # Uniform tables: every slot accepts and aliases to itself, so the
        # flat alias array is just each edge's within-neighborhood index —
        # one vectorized pass instead of a per-vertex loop.
        degrees = graph.degrees()
        starts = graph.row_ptr[:-1]
        alias = np.arange(graph.num_edges, dtype=np.int64) - np.repeat(starts, degrees)
        return AliasTable(prob=prob, alias=alias)
    alias = np.zeros(graph.num_edges, dtype=np.int64)
    for v in range(graph.num_vertices):
        lo = int(graph.row_ptr[v])
        hi = int(graph.row_ptr[v + 1])
        if hi == lo:
            continue
        p, a = build_alias_slots(graph.weights[lo:hi])
        prob[lo:hi] = p
        alias[lo:hi] = a
    return AliasTable(prob=prob, alias=alias)


def alias_expected_distribution(graph: CSRGraph, vertex: int) -> np.ndarray:
    """The exact neighbor distribution an alias table should realize.

    Used by tests to verify statistical correctness of alias sampling.
    """
    weights = graph.neighbor_weights(vertex)
    if weights.size == 0:
        raise SamplingError(f"vertex {vertex} has no neighbors")
    return weights / weights.sum()
