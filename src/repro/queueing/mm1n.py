"""Bulk-service queue analytics — the M/M/1[N] model of Section VI-A.

The scheduler is modeled as a single server that can dispatch up to ``N``
tasks per decision epoch (one per pipeline): tasks arrive Poisson(lambda),
service is exponential(mu) per pipeline, the batch size is at most N.
These analytics give the stability condition and utilization targets the
zero-bubble design reasons about; the companion module
(:mod:`repro.queueing.validation`) checks the buffer-depth consequence
(Theorem VI.1) against simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import SchedulerError


@dataclass(frozen=True)
class BulkServiceQueue:
    """An M/M/1[N] bulk-service queue.

    Parameters
    ----------
    arrival_rate:
        lambda — task arrivals per cycle.
    service_rate:
        mu — tasks one pipeline completes per cycle (1 for II=1).
    batch_size:
        N — pipelines served per epoch.
    """

    arrival_rate: float
    service_rate: float
    batch_size: int

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise SchedulerError("arrival_rate must be positive")
        if self.service_rate <= 0:
            raise SchedulerError("service_rate must be positive")
        if self.batch_size < 1:
            raise SchedulerError("batch_size must be >= 1")

    @property
    def offered_load(self) -> float:
        """rho = lambda / (N * mu); the system is stable iff rho < 1."""
        return self.arrival_rate / (self.batch_size * self.service_rate)

    def is_stable(self) -> bool:
        """Whether queues stay bounded."""
        return self.offered_load < 1.0

    def utilization(self) -> float:
        """Long-run fraction of pipeline capacity in use (= rho, capped)."""
        return min(1.0, self.offered_load)

    def idle_pipelines(self) -> float:
        """Expected pipelines idle per epoch without extra buffering.

        With nothing buffered, an epoch can only serve what arrived:
        ``N - min(N, lambda/mu)`` pipelines go idle on average — the
        bubbles Theorem VI.1's buffer eliminates when backlogged.
        """
        served = min(float(self.batch_size), self.arrival_rate / self.service_rate)
        return self.batch_size - served

    def throughput(self) -> float:
        """Departure rate: lambda when stable, capacity otherwise."""
        if self.is_stable():
            return self.arrival_rate
        return self.batch_size * self.service_rate


def weighted_capacity_split(
    service_rate: float,
    weights: Sequence[float],
    keys: Sequence[str] | None = None,
) -> list[float]:
    """Split one server's total service rate into per-class rates.

    A weighted-priority bulk server (the multi-tenant micro-batcher of
    :mod:`repro.serve.qos`) is, per class, an M/M/1[N] queue whose
    long-run service rate is the class's weight share of the total: a
    class with weight ``w_i`` out of ``sum(w)`` is dispatched ``w_i /
    sum(w)`` of the slots whenever every class is backlogged, and at
    least that often otherwise (idle classes donate their slots).  The
    returned per-class rates are therefore *conservative* inputs for
    :class:`BulkServiceQueue` stability checks and for
    :func:`repro.serve.admission.recommended_queue_depth` — a class
    stable on its share is stable in the shared system.

    The shares sum to ``service_rate`` *exactly* (``math.fsum``), never
    merely approximately: per-class division rounds each share, and the
    lost (or invented) capacity would otherwise surface as per-tenant
    admission depths that disagree with the sized total.  The rounding
    residue is assigned deterministically to the largest-fraction class
    — the largest share absorbs a sub-ulp correction with the least
    relative distortion — with ``keys`` (tenant names) breaking ties, so
    equal-weight configurations cannot flap between runs.
    """
    if service_rate <= 0:
        raise SchedulerError("service_rate must be positive")
    if not weights:
        raise SchedulerError("weighted_capacity_split needs at least one class")
    if any(w <= 0 for w in weights):
        raise SchedulerError(f"class weights must be positive, got {list(weights)}")
    if keys is not None and len(keys) != len(weights):
        raise SchedulerError(
            f"got {len(keys)} keys for {len(weights)} class weights"
        )
    total = math.fsum(float(w) for w in weights)
    shares = [service_rate * float(w) / total for w in weights]
    order = sorted(
        range(len(shares)),
        key=(lambda i: (-shares[i], keys[i])) if keys is not None
        else (lambda i: (-shares[i], i)),
    )
    anchor = order[0]
    shares[anchor] = service_rate - math.fsum(
        share for i, share in enumerate(shares) if i != anchor
    )
    # The anchor correction can leave a sub-ulp residue when the anchor
    # shares the total's binade (its ulp is too coarse to express the
    # fix); walking down to smaller shares reaches one with a fine
    # enough ulp to absorb it exactly.
    for index in order:
        for _ in range(2):
            residue = math.fsum([service_rate, *(-share for share in shares)])
            if residue == 0.0:
                return shares
            corrected = shares[index] + residue
            if corrected <= 0.0:  # pragma: no cover - ~1e16 weight ratios
                break
            shares[index] = corrected
    return shares


def zero_bubble_condition(
    arrival_rate: float, service_rate: float, batch_size: int, backlog: int
) -> bool:
    """Whether a backlogged system can keep all pipelines busy.

    A backlog of at least N tasks guarantees a full batch each epoch, so
    the scheduler never idles a pipeline for lack of work; this is the
    "whenever the system is backlogged" premise of Section VI-B.
    """
    queue = BulkServiceQueue(arrival_rate, service_rate, batch_size)
    return backlog >= queue.batch_size
