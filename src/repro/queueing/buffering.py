"""Theorem VI.1 — minimum buffer depth under delayed feedback.

The scheduler observes pipeline availability through FIFO backpressure
with up to ``C`` cycles of delay; under that delay, a queue of depth at
least ``D = N + mu * C * N`` between scheduler and pipelines guarantees
that a backlogged system never starves a pipeline (Lu et al. [44],
as applied in Section VI-B).

For RidgeWalker's butterfly fabric ``C = 4 * log2(N)`` (two fully
pipelined 2-cycle units per stage, each way), giving the per-pipeline
depth ``1 + 4*log2(N)`` used in Section VI-D.
"""

from __future__ import annotations

import math

from repro.errors import SchedulerError


def feedback_delay_cycles(num_pipelines: int) -> int:
    """C — the scheduler-to-pipeline round-trip observation delay.

    ``2*log2(N)`` through the balancer plus the return trip
    (Section VI-D: "the total scheduling latency is at most 4 log N").
    """
    if num_pipelines < 1:
        raise SchedulerError("num_pipelines must be >= 1")
    if num_pipelines == 1:
        return 2
    return 4 * math.ceil(math.log2(num_pipelines))


def minimum_total_depth(num_pipelines: int, mu: float = 1.0, delay: int | None = None) -> int:
    """Theorem VI.1: ``D = N + mu * C * N`` total buffered tasks."""
    if mu <= 0:
        raise SchedulerError("mu must be positive")
    if num_pipelines < 1:
        raise SchedulerError("num_pipelines must be >= 1")
    c = feedback_delay_cycles(num_pipelines) if delay is None else delay
    if c < 0:
        raise SchedulerError("delay must be non-negative")
    return int(math.ceil(num_pipelines + mu * c * num_pipelines))


def minimum_depth_per_pipeline(num_pipelines: int, mu: float = 1.0) -> int:
    """Per-pipeline FIFO depth: ``1 + 4*log2(N)`` for ``mu = 1``."""
    return minimum_total_depth(num_pipelines, mu=mu) // num_pipelines


def is_zero_bubble_depth(depth_per_pipeline: int, num_pipelines: int, mu: float = 1.0) -> bool:
    """Whether a given per-pipeline depth meets the theorem's bound."""
    return depth_per_pipeline >= minimum_depth_per_pipeline(num_pipelines, mu=mu)
