"""Simulation validation of Theorem VI.1.

A minimal, self-contained model of the theorem's setting — deliberately
independent of the full accelerator so it validates the *theory*, not
the implementation:

* ``N`` servers with stochastic service: each cycle a server completes a
  burst of tasks with mean rate ``mu`` (service-time variation is what
  makes delayed observation costly);
* a dispatcher issuing up to ``N`` tasks per cycle, allocated greedily to
  the FIFOs it *believes* have the most space — beliefs are ``C`` cycles
  stale (the delayed backpressure observation of Section VI-A);
* an always-backlogged task source (the theorem's premise).

With per-server FIFO depth at or above the theorem's ``1 + mu*C`` the
servers should essentially never starve after warm-up; with depth well
below it, bubbles appear.  The test suite asserts that crossover and the
scheduler microbenchmark sweeps it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulerError


@dataclass
class DelayedFeedbackResult:
    """Outcome of one delayed-feedback dispatch simulation."""

    cycles: int
    served: int
    bubble_cycles: int
    server_cycles: int

    @property
    def bubble_ratio(self) -> float:
        """Fraction of post-warmup server-cycles spent starved."""
        return self.bubble_cycles / self.server_cycles if self.server_cycles else 0.0


def simulate_delayed_feedback(
    num_servers: int,
    fifo_depth: int,
    feedback_delay: int,
    cycles: int = 4000,
    mu: float = 1.0,
    burst: int = 4,
    warmup: int = 128,
    seed: int = 0,
) -> DelayedFeedbackResult:
    """Run the theorem's setting and measure post-warmup starvation.

    Service is bursty-Bernoulli: each cycle a server completes ``burst``
    tasks with probability ``mu / burst`` (mean ``mu``, variance > 0).
    The dispatcher refills based on occupancy snapshots that are
    ``feedback_delay`` cycles old, so a burst can drain a shallow FIFO
    before the dispatcher reacts — that starvation window is exactly
    what Theorem VI.1's depth eliminates.
    """
    if num_servers < 1:
        raise SchedulerError("num_servers must be >= 1")
    if fifo_depth < 1:
        raise SchedulerError("fifo_depth must be >= 1")
    if feedback_delay < 0:
        raise SchedulerError("feedback_delay must be >= 0")
    if mu <= 0 or burst < 1 or mu / burst > 1:
        raise SchedulerError("need 0 < mu and burst >= 1 and mu/burst <= 1")

    rng = np.random.default_rng(seed)
    fifos = np.zeros(num_servers, dtype=np.int64)
    history: deque[np.ndarray] = deque(
        [fifos.copy() for _ in range(feedback_delay + 1)], maxlen=feedback_delay + 1
    )
    served = 0
    bubble_cycles = 0
    server_cycles = 0

    for cycle in range(cycles):
        observed = history[0]
        # Dispatch up to num_servers tasks to the believed-emptiest FIFOs.
        budget = num_servers
        believed_space = fifo_depth - observed
        for i in np.argsort(-believed_space):
            if budget <= 0:
                break
            want = int(believed_space[i])
            if want <= 0:
                continue
            # Physical capacity still binds (writes cannot overflow).
            take = min(want, budget, fifo_depth - int(fifos[i]))
            if take > 0:
                fifos[i] += take
                budget -= take
        # Stochastic bursty service.
        bursts = rng.random(num_servers) < (mu / burst)
        for i in range(num_servers):
            if cycle >= warmup:
                server_cycles += 1
            if not bursts[i]:
                continue
            if fifos[i] > 0:
                take = min(burst, int(fifos[i]))
                fifos[i] -= take
                served += take
            elif cycle >= warmup:
                bubble_cycles += 1
        history.append(fifos.copy())

    return DelayedFeedbackResult(
        cycles=cycles,
        served=served,
        bubble_cycles=bubble_cycles,
        server_cycles=server_cycles,
    )


def depth_sweep(
    num_servers: int,
    feedback_delay: int,
    depths: list[int],
    cycles: int = 4000,
    mu: float = 1.0,
    burst: int = 4,
    seed: int = 0,
) -> dict[int, float]:
    """Bubble ratio for each candidate FIFO depth."""
    return {
        depth: simulate_delayed_feedback(
            num_servers,
            depth,
            feedback_delay,
            cycles=cycles,
            mu=mu,
            burst=burst,
            seed=seed,
        ).bubble_ratio
        for depth in depths
    }
