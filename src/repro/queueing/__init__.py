"""Queueing theory: M/M/1[N] analytics and Theorem VI.1 validation."""

from repro.queueing.buffering import (
    feedback_delay_cycles,
    is_zero_bubble_depth,
    minimum_depth_per_pipeline,
    minimum_total_depth,
)
from repro.queueing.mm1n import (
    BulkServiceQueue,
    weighted_capacity_split,
    zero_bubble_condition,
)
from repro.queueing.validation import (
    DelayedFeedbackResult,
    depth_sweep,
    simulate_delayed_feedback,
)

__all__ = [
    "BulkServiceQueue",
    "DelayedFeedbackResult",
    "depth_sweep",
    "feedback_delay_cycles",
    "is_zero_bubble_depth",
    "minimum_depth_per_pipeline",
    "minimum_total_depth",
    "simulate_delayed_feedback",
    "weighted_capacity_split",
    "zero_bubble_condition",
]
