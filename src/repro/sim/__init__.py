"""Simulation kernel: two-phase synchronous modules, FIFOs, metrics."""

from repro.sim.fifo import StreamFifo
from repro.sim.kernel import SimulationKernel
from repro.sim.module import Module, ModuleStats, PipelinedModule
from repro.sim.stats import RunMetrics
from repro.sim.trace import (
    TraceSeries,
    UtilizationTracer,
    render_dashboard,
    render_timeline,
)

__all__ = [
    "Module",
    "ModuleStats",
    "PipelinedModule",
    "RunMetrics",
    "SimulationKernel",
    "StreamFifo",
    "TraceSeries",
    "UtilizationTracer",
    "render_dashboard",
    "render_timeline",
]
