"""Two-phase synchronous simulation kernel.

Each cycle the kernel (1) ticks every module in registration order,
(2) commits every FIFO so staged pushes become visible, and (3) checks
progress for deadlock detection.  Because FIFO writes are registered
(:mod:`repro.sim.fifo`), the tick order has no semantic effect — the
kernel is a synchronous digital circuit evaluator, not an event queue.

The kernel deliberately has no notion of tasks or graphs; RidgeWalker,
its ablated variants and the FPGA baselines are all just module graphs
wired over FIFOs and memory channels.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import DeadlockError, SimulationError
from repro.memory.system import MemorySystem
from repro.sim.fifo import StreamFifo
from repro.sim.module import Module

#: Cycles without observable progress before declaring deadlock.  Must
#: exceed the largest memory round-trip plus scheduler latency.
_DEADLOCK_WINDOW = 2048


class SimulationKernel:
    """Owns the module list, FIFOs and memory; advances the clock."""

    def __init__(self, core_mhz: float = 320.0) -> None:
        if core_mhz <= 0:
            raise SimulationError("core_mhz must be positive")
        self.core_mhz = core_mhz
        self._modules: list[Module] = []
        self._fifos: list[StreamFifo] = []
        self._memories: list[MemorySystem] = []
        self.cycle = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_module(self, module: Module, prepend: bool = False) -> Module:
        """Register a module to be ticked each cycle.

        ``prepend`` ticks the module before everything already
        registered — semantically irrelevant for well-formed designs
        (FIFO writes are registered), but useful for fault injectors and
        probes that must win same-cycle FIFO pop races.
        """
        if prepend:
            self._modules.insert(0, module)
        else:
            self._modules.append(module)
        return module

    def add_modules(self, modules: Iterable[Module]) -> None:
        """Register several modules."""
        for module in modules:
            self.add_module(module)

    def make_fifo(self, capacity: int, name: str) -> StreamFifo:
        """Create and register a stream FIFO."""
        fifo = StreamFifo(capacity, name=name)
        self._fifos.append(fifo)
        return fifo

    def add_memory(self, memory: MemorySystem) -> MemorySystem:
        """Register a memory system to be ticked each cycle."""
        self._memories.append(memory)
        return memory

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance exactly one cycle."""
        for module in self._modules:
            module.tick(self.cycle)
        for memory in self._memories:
            memory.tick()
        for fifo in self._fifos:
            fifo.commit()
        self.cycle += 1

    def run_until(
        self,
        done: Callable[[], bool],
        max_cycles: int = 10_000_000,
    ) -> int:
        """Run until ``done()`` or raise on deadlock / cycle budget.

        Progress is measured by total FIFO traffic plus memory traffic;
        if neither moves for a full deadlock window while ``done()`` stays
        false, the module graph has wedged and a :class:`DeadlockError`
        with the in-flight census is raised — far more debuggable than an
        infinite loop.
        """
        last_progress_marker = self._progress_marker()
        last_progress_cycle = self.cycle
        start = self.cycle
        while not done():
            if self.cycle - start >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles without finishing"
                )
            self.step()
            marker = self._progress_marker()
            if marker != last_progress_marker:
                last_progress_marker = marker
                last_progress_cycle = self.cycle
            elif self.cycle - last_progress_cycle > _DEADLOCK_WINDOW:
                raise DeadlockError(
                    cycle=self.cycle,
                    in_flight=self.total_in_flight(),
                    detail=self._census(),
                )
        return self.cycle

    def _progress_marker(self) -> tuple[int, int]:
        fifo_traffic = sum(f.total_pushed + f.total_popped for f in self._fifos)
        memory_traffic = sum(m.total_requests() for m in self._memories)
        return fifo_traffic, memory_traffic

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_in_flight(self) -> int:
        """Items held in FIFOs plus busy modules (deadlock census)."""
        fifo_items = sum(f.in_flight() for f in self._fifos)
        busy_modules = sum(1 for m in self._modules if m.busy())
        return fifo_items + busy_modules

    def _census(self) -> str:
        occupied = [f"{f.name}={f.in_flight()}" for f in self._fifos if f.in_flight()]
        busy = [m.name for m in self._modules if m.busy()]
        return f"fifos[{', '.join(occupied)}] busy[{', '.join(busy)}]"

    def elapsed_seconds(self) -> float:
        """Wall-clock time the simulated cycles represent."""
        return self.cycle / (self.core_mhz * 1e6)

    @property
    def modules(self) -> list[Module]:
        return list(self._modules)

    @property
    def fifos(self) -> list[StreamFifo]:
        return list(self._fifos)
