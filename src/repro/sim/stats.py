"""Run-level performance accounting shared by all simulated engines.

Every engine (RidgeWalker, ablations, FPGA baselines) reports the same
:class:`RunMetrics`, so benchmark harnesses can compute the paper's
figures — MStep/s throughput, bandwidth utilization against Equation (1),
and bubble ratios — without knowing which engine produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class RunMetrics:
    """Outcome of one simulated GRW run.

    Attributes
    ----------
    total_steps:
        Traversed hops summed over all queries (the paper's "total count
        of visited vertices" beyond starts).
    cycles:
        Core clock cycles the run took.
    core_mhz:
        Core clock used to convert cycles into time.
    random_transactions:
        Random memory transactions issued (row + column accesses).
    words_transferred:
        Total 64-bit words moved, bursts included.
    peak_random_tx_per_cycle:
        Aggregate channel issue capability per core cycle — denominator
        of bandwidth utilization.
    bubble_cycles / pipeline_cycles:
        Summed starved cycles and total observed cycles over the compute
        pipelines, for bubble-ratio reporting.
    """

    total_steps: int
    cycles: int
    core_mhz: float
    random_transactions: int = 0
    words_transferred: int = 0
    peak_random_tx_per_cycle: float = 0.0
    bubble_cycles: int = 0
    pipeline_cycles: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise SimulationError(f"cycles must be positive, got {self.cycles}")
        if self.core_mhz <= 0:
            raise SimulationError("core_mhz must be positive")
        if self.total_steps < 0:
            raise SimulationError("total_steps must be non-negative")

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------
    def seconds(self) -> float:
        """Wall-clock duration of the run."""
        return self.cycles / (self.core_mhz * 1e6)

    def msteps_per_second(self) -> float:
        """Throughput in millions of traversed steps per second —
        the paper's primary performance metric (Section VIII-A4)."""
        return self.total_steps / self.seconds() / 1e6

    def effective_bandwidth_gbs(self) -> float:
        """Achieved memory bandwidth (B_measured)."""
        return self.words_transferred * 8 / self.seconds() / 1e9

    def bandwidth_utilization(self) -> float:
        """``B_measured / B_peak`` with B_peak from the provisioned
        channels' random-transaction capability (Equation 1)."""
        if self.peak_random_tx_per_cycle <= 0:
            raise SimulationError("peak_random_tx_per_cycle not set")
        peak_words_per_cycle = self.peak_random_tx_per_cycle
        peak_gbs = peak_words_per_cycle * (self.core_mhz * 1e6) * 8 / 1e9
        return self.effective_bandwidth_gbs() / peak_gbs

    def bubble_ratio(self) -> float:
        """Fraction of pipeline cycles lost to starvation."""
        if self.pipeline_cycles == 0:
            return 0.0
        return self.bubble_cycles / self.pipeline_cycles

    def steps_per_cycle(self) -> float:
        """Aggregate steps retired per core cycle."""
        return self.total_steps / self.cycles

    def summary(self) -> str:
        """One-line human-readable summary for harness logs."""
        return (
            f"{self.total_steps} steps in {self.cycles} cycles @ {self.core_mhz:.0f} MHz "
            f"= {self.msteps_per_second():.1f} MStep/s, "
            f"BW {self.effective_bandwidth_gbs():.2f} GB/s, "
            f"bubbles {self.bubble_ratio() * 100:.1f}%"
        )
