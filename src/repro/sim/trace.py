"""Utilization tracing: cycle-windowed occupancy and activity timelines.

The paper's analysis leans on cycle-level visibility ("continuously
monitors pipeline utilization at cycle-level granularity") — this module
gives the simulator the same visibility: samplers attached to the kernel
record per-window module activity and FIFO occupancy, and an ASCII
renderer turns them into the kind of timeline Figure 3/5 sketch.

Usage::

    tracer = UtilizationTracer(window=64)
    tracer.watch_module(machine.pipelines[0].sampling)
    tracer.watch_fifo(some_fifo)
    ... kernel.step() loop calling tracer.sample(kernel.cycle) ...
    print(render_timeline(tracer.series("pipe0.sp"), width=60))
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.fifo import StreamFifo
from repro.sim.module import Module

#: Glyph ramp for timeline rendering, idle -> saturated.
_RAMP = " .:-=+*#%@"


@dataclass
class TraceSeries:
    """One traced signal: per-window values in [0, 1]."""

    name: str
    window: int
    values: list[float] = field(default_factory=list)

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    def trough(self) -> float:
        return min(self.values) if self.values else 0.0


class UtilizationTracer:
    """Samples watched modules and FIFOs every ``window`` cycles."""

    def __init__(self, window: int = 64) -> None:
        if window < 1:
            raise SimulationError(f"window must be >= 1, got {window}")
        self.window = window
        self._modules: list[tuple[Module, TraceSeries, int]] = []
        self._fifos: list[tuple[StreamFifo, TraceSeries]] = []
        self._last_sample_cycle = 0

    def watch_module(self, module: Module) -> TraceSeries:
        """Trace a module's activity ratio per window."""
        series = TraceSeries(name=module.name, window=self.window)
        self._modules.append((module, series, module.stats.active_cycles))
        return series

    def watch_fifo(self, fifo: StreamFifo) -> TraceSeries:
        """Trace a FIFO's occupancy fraction per window."""
        series = TraceSeries(name=fifo.name, window=self.window)
        self._fifos.append((fifo, series))
        return series

    def sample(self, cycle: int) -> bool:
        """Record one window if due; returns whether a sample was taken."""
        if cycle - self._last_sample_cycle < self.window:
            return False
        self._last_sample_cycle = cycle
        for i, (module, series, last_active) in enumerate(self._modules):
            active = module.stats.active_cycles
            series.values.append(min(1.0, (active - last_active) / self.window))
            self._modules[i] = (module, series, active)
        for fifo, series in self._fifos:
            series.values.append(min(1.0, fifo.occupancy() / fifo.capacity))
        return True

    def series(self, name: str) -> TraceSeries:
        """Look up a traced series by its module/FIFO name."""
        for _, series, _ in self._modules:
            if series.name == name:
                return series
        for _, series in self._fifos:
            if series.name == name:
                return series
        raise SimulationError(f"no traced series named {name!r}")

    def all_series(self) -> list[TraceSeries]:
        return [s for _, s, _ in self._modules] + [s for _, s in self._fifos]


def render_timeline(series: TraceSeries, width: int = 64) -> str:
    """Render one series as a compact ASCII activity strip."""
    if not series.values:
        return f"{series.name}: (no samples)"
    values = _resample(series.values, width)
    glyphs = "".join(_RAMP[min(len(_RAMP) - 1, int(v * (len(_RAMP) - 1) + 0.5))] for v in values)
    return f"{series.name:24s} |{glyphs}| mean={series.mean() * 100:4.0f}%"


def render_dashboard(tracer: UtilizationTracer, width: int = 64) -> str:
    """Render every traced series, one strip per line."""
    lines = [render_timeline(s, width=width) for s in tracer.all_series()]
    return "\n".join(lines)


def _resample(values: list[float], width: int) -> list[float]:
    """Average-downsample (or repeat-upsample) to exactly ``width`` bins."""
    if width < 1:
        raise SimulationError("width must be >= 1")
    n = len(values)
    if n == width:
        return list(values)
    out = []
    for i in range(width):
        lo = int(i * n / width)
        hi = max(lo + 1, int((i + 1) * n / width))
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out
