"""Registered stream FIFOs with backpressure.

Modules in the simulated accelerator communicate exclusively through
these FIFOs, mirroring the paper's "shallow FIFOs within the AXI-Stream
protocol, enabling backpressure-based flow control" (Section IV-B).

Semantics are *registered* (two-phase): items pushed during cycle ``t``
become visible to consumers at cycle ``t + 1``, when the simulation
kernel commits all staged writes.  This makes module evaluation order
within a cycle irrelevant — exactly like flip-flop-separated hardware —
and is what lets the kernel call modules in any fixed order without
combinational races.

``is_full`` reflects the registered occupancy plus already-staged pushes,
the same conservatively-registered full flag a hardware FIFO exports.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generic, TypeVar

from repro.errors import SimulationError

T = TypeVar("T")


class StreamFifo(Generic[T]):
    """Bounded FIFO with registered push visibility.

    The paper's Dispatcher/Merger algorithms are written against exactly
    this interface: ``is_full`` / ``is_empty`` status flags plus
    non-blocking reads and writes.
    """

    def __init__(self, capacity: int, name: str = "fifo") -> None:
        if capacity < 1:
            raise SimulationError(f"fifo capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._queue: deque[T] = deque()
        self._staged: list[T] = []
        self._pops_this_cycle = 0
        self.total_pushed = 0
        self.total_popped = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def is_full(self) -> bool:
        """Registered full flag (committed occupancy + staged pushes)."""
        return len(self._queue) + len(self._staged) >= self.capacity

    def push(self, item: T) -> None:
        """Stage a push; visible to consumers next cycle."""
        if self.is_full():
            raise SimulationError(f"push into full fifo {self.name!r}")
        self._staged.append(item)
        self.total_pushed += 1

    def try_push(self, item: T) -> bool:
        """Push if space; returns whether the push happened."""
        if self.is_full():
            return False
        self.push(item)
        return True

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """Whether no committed item is available this cycle."""
        return len(self._queue) - self._pops_this_cycle == 0

    def front(self) -> T:
        """Peek the oldest committed item."""
        if self.is_empty():
            raise SimulationError(f"front of empty fifo {self.name!r}")
        return self._queue[self._pops_this_cycle]

    def pop(self) -> T:
        """Consume the oldest committed item (removed at commit)."""
        item = self.front()
        self._pops_this_cycle += 1
        self.total_popped += 1
        return item

    def try_pop(self) -> T | None:
        """Pop if available; ``None`` otherwise (non-blocking read)."""
        if self.is_empty():
            return None
        return self.pop()

    # ------------------------------------------------------------------
    # Kernel side
    # ------------------------------------------------------------------
    def commit(self) -> None:
        """End-of-cycle: apply pops, make staged pushes visible."""
        for _ in range(self._pops_this_cycle):
            self._queue.popleft()
        self._pops_this_cycle = 0
        if self._staged:
            self._queue.extend(self._staged)
            self._staged.clear()
        if len(self._queue) > self.peak_occupancy:
            self.peak_occupancy = len(self._queue)

    def occupancy(self) -> int:
        """Committed items currently held (before this cycle's pops)."""
        return len(self._queue)

    def in_flight(self) -> int:
        """Committed plus staged items — work the fifo is responsible for."""
        return len(self._queue) + len(self._staged) - self._pops_this_cycle

    def __len__(self) -> int:
        return self.occupancy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamFifo({self.name!r}, {self.occupancy()}/{self.capacity})"
