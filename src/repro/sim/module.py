"""Module base classes for the cycle-level simulator.

A :class:`Module` is anything the kernel ticks once per cycle.  The
workhorse subclass is :class:`PipelinedModule`: a fixed-latency,
initiation-interval-1 pipeline stage — the paper's modules ("all modules
are designed to process one task per cycle", Section V-A) map onto it
directly.  Utilization counters distinguish the three states the paper's
analysis cares about:

* **active** — the module advanced work this cycle;
* **starved** — no input available (a *pipeline bubble*: this counter is
  the numerator of the bubble ratios quoted against LightRW);
* **blocked** — input ready but downstream backpressure stalled it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import SimulationError
from repro.sim.fifo import StreamFifo


@dataclass
class ModuleStats:
    """Per-module utilization counters."""

    active_cycles: int = 0
    starved_cycles: int = 0
    blocked_cycles: int = 0
    items_processed: int = 0

    def total_cycles(self) -> int:
        return self.active_cycles + self.starved_cycles + self.blocked_cycles

    def utilization(self) -> float:
        """Fraction of cycles the module advanced work."""
        total = self.total_cycles()
        return self.active_cycles / total if total else 0.0

    def bubble_ratio(self) -> float:
        """Fraction of cycles lost to input starvation."""
        total = self.total_cycles()
        return self.starved_cycles / total if total else 0.0


class Module(ABC):
    """Anything the simulation kernel ticks once per cycle."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = ModuleStats()

    @abstractmethod
    def tick(self, cycle: int) -> None:
        """Advance one cycle."""

    def busy(self) -> bool:
        """Whether the module still holds in-flight work (for drain
        detection); stateless modules return False."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class PipelinedModule(Module):
    """Fixed-latency, II=1 pipeline stage between two stream FIFOs.

    Accepts one item per cycle from ``input_fifo`` (when internal pipeline
    registers have room), transforms it with :meth:`process` after
    ``latency`` cycles, and pushes the result to ``output_fifo`` (stalling
    on backpressure).  ``process`` may return ``None`` to drop the item
    (e.g. a filter) — the stage still counts it as processed.
    """

    def __init__(
        self,
        name: str,
        input_fifo: StreamFifo,
        output_fifo: StreamFifo,
        latency: int = 1,
    ) -> None:
        super().__init__(name)
        if latency < 1:
            raise SimulationError(f"latency must be >= 1, got {latency}")
        self.input_fifo = input_fifo
        self.output_fifo = output_fifo
        self.latency = latency
        self._pipe: deque[tuple[int, Any]] = deque()  # (ready_cycle, item)

    def process(self, item: Any, cycle: int) -> Any:
        """Transform one item; identity by default."""
        return item

    def tick(self, cycle: int) -> None:
        progressed = False
        # Retire: oldest item leaves if ready and downstream has space.
        if self._pipe and self._pipe[0][0] <= cycle:
            if not self.output_fifo.is_full():
                _, item = self._pipe.popleft()
                result = self.process(item, cycle)
                if result is not None:
                    self.output_fifo.push(result)
                self.stats.items_processed += 1
                progressed = True
            else:
                self.stats.blocked_cycles += 1
                return
        # Accept: one new item per cycle while registers have room.
        if len(self._pipe) < self.latency and not self.input_fifo.is_empty():
            self._pipe.append((cycle + self.latency, self.input_fifo.pop()))
            progressed = True
        if progressed:
            self.stats.active_cycles += 1
        elif self.input_fifo.is_empty() and not self._pipe:
            self.stats.starved_cycles += 1
        else:
            self.stats.blocked_cycles += 1

    def busy(self) -> bool:
        return bool(self._pipe)

    def in_flight(self) -> int:
        """Items currently inside the pipeline registers."""
        return len(self._pipe)
