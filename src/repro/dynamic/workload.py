"""Update-workload generators for the dynamic-graph benchmarks.

Three trace families cover the update patterns the dynamic-graph
literature (LightRW, FlexiWalker) evaluates against, all derived
deterministically from an RMAT edge stream:

* **grow-only** — the graph starts from a prefix of the edge stream and
  the remainder arrives in insert-only batches (social-graph ingestion).
* **sliding-window** — a fixed-size window slides over the stream: every
  batch inserts the next chunk and retires the oldest (interaction
  graphs with TTL'd edges).  This is the acceptance trace: it exercises
  insert *and* delete paths and keeps the edge count stable, so
  maintenance cost per batch is comparable across the trace.
* **weight-churn** — the topology is fixed and batches re-draw the
  weights of random edge subsets (recommender feedback loops); only
  weighted samplers' state is invalidated.

A trace is a plain value: the base edge set plus a list of
:class:`UpdateBatch` deltas.  ``UpdateTrace.build_dynamic()`` creates the
starting :class:`~repro.dynamic.graph.DynamicGraph`, and
:func:`apply_batch` applies one delta — the benchmark and CLI drive the
same objects the tests replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dynamic.graph import DynamicGraph
from repro.errors import DynamicGraphError
from repro.graph.builders import from_edges
from repro.graph.generators import rmat
from repro.sampling.base import normalize_seed

#: Trace kinds accepted by :func:`make_trace` (and the CLI's --trace).
TRACE_KINDS = ("grow", "window", "churn")

_WEIGHT_LOW, _WEIGHT_HIGH = 0.5, 2.0

#: ``SeedSequence((seed, tag))`` stream tags: arrival order/weights vs
#: churn re-draws must be independent children of the trace seed (RW102
#: — the historical ``seed + 1`` / ``seed + 2`` offsets could collide
#: with each other across call sites).
_STREAM_TAG_ARRIVALS = 1
_STREAM_TAG_CHURN = 2


def _stream_rng(seed: int, tag: int) -> np.random.Generator:
    """A ``SeedSequence((seed, tag))``-rooted generator for one trace
    sub-stream."""
    sequence = np.random.SeedSequence((normalize_seed(seed), tag))
    return np.random.default_rng(sequence)


@dataclass(frozen=True)
class UpdateBatch:
    """One streamed delta: inserts, deletions and re-weights."""

    add: np.ndarray
    add_weights: np.ndarray | None
    remove: np.ndarray
    reweight: np.ndarray
    reweight_weights: np.ndarray | None

    @property
    def num_ops(self) -> int:
        """Edge operations this batch applies."""
        return int(self.add.shape[0] + self.remove.shape[0] + self.reweight.shape[0])


@dataclass(frozen=True)
class UpdateTrace:
    """A reproducible update workload over a fixed vertex set."""

    name: str
    num_vertices: int
    base_edges: np.ndarray
    base_weights: np.ndarray | None
    batches: list[UpdateBatch] = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        return sum(batch.num_ops for batch in self.batches)

    def build_dynamic(self, **kwargs) -> DynamicGraph:
        """The starting :class:`DynamicGraph` this trace's batches mutate."""
        base = from_edges(
            self.base_edges,
            num_vertices=self.num_vertices,
            weights=self.base_weights,
            name=self.name,
        )
        return DynamicGraph(base, **kwargs)


def apply_batch(graph: DynamicGraph, batch: UpdateBatch) -> None:
    """Apply one trace delta to a dynamic graph."""
    if batch.add.shape[0]:
        graph.add_edges(batch.add, weights=batch.add_weights)
    if batch.remove.shape[0]:
        graph.remove_edges(batch.remove)
    if batch.reweight.shape[0]:
        graph.update_weights(batch.reweight, batch.reweight_weights)


def _empty_edges() -> np.ndarray:
    return np.empty((0, 2), dtype=np.int64)


def _edge_stream(
    scale: int, edge_factor: int, seed: int, weighted: bool
) -> tuple[int, np.ndarray, np.ndarray | None]:
    """A deduplicated RMAT edge list in a seeded random arrival order."""
    graph = rmat(scale, edge_factor=edge_factor, seed=seed)
    sources = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), graph.degrees()
    )
    edges = np.stack([sources, graph.col], axis=1)
    rng = _stream_rng(seed, _STREAM_TAG_ARRIVALS)
    edges = edges[rng.permutation(edges.shape[0])]
    weights = (
        rng.uniform(_WEIGHT_LOW, _WEIGHT_HIGH, size=edges.shape[0])
        if weighted
        else None
    )
    return graph.num_vertices, edges, weights


def _insert_batch(edges: np.ndarray, weights: np.ndarray | None) -> UpdateBatch:
    return UpdateBatch(
        add=edges,
        add_weights=weights,
        remove=_empty_edges(),
        reweight=_empty_edges(),
        reweight_weights=None,
    )


def grow_only_trace(
    scale: int,
    edge_factor: int = 8,
    base_fraction: float = 0.5,
    batch_size: int = 1000,
    num_batches: int | None = None,
    weighted: bool = True,
    seed: int = 0,
) -> UpdateTrace:
    """Insert-only stream: the graph grows from a prefix of the edge set."""
    if not 0 < base_fraction < 1:
        raise DynamicGraphError(
            f"base_fraction must be in (0, 1), got {base_fraction}"
        )
    num_vertices, edges, weights = _edge_stream(scale, edge_factor, seed, weighted)
    split = max(1, int(edges.shape[0] * base_fraction))
    batches: list[UpdateBatch] = []
    cursor = split
    while cursor < edges.shape[0]:
        if num_batches is not None and len(batches) >= num_batches:
            break
        upper = min(cursor + batch_size, edges.shape[0])
        batches.append(
            _insert_batch(
                edges[cursor:upper],
                None if weights is None else weights[cursor:upper],
            )
        )
        cursor = upper
    return UpdateTrace(
        name=f"grow-rmat{scale}",
        num_vertices=num_vertices,
        base_edges=edges[:split],
        base_weights=None if weights is None else weights[:split],
        batches=batches,
    )


def sliding_window_trace(
    scale: int,
    edge_factor: int = 8,
    window_fraction: float = 0.5,
    batch_size: int = 1000,
    num_batches: int | None = None,
    weighted: bool = True,
    seed: int = 0,
) -> UpdateTrace:
    """Fixed-size window over the edge stream: each batch inserts the next
    chunk and removes the oldest, keeping |E| (nearly) constant."""
    if not 0 < window_fraction < 1:
        raise DynamicGraphError(
            f"window_fraction must be in (0, 1), got {window_fraction}"
        )
    num_vertices, edges, weights = _edge_stream(scale, edge_factor, seed, weighted)
    window = max(batch_size, int(edges.shape[0] * window_fraction))
    batches: list[UpdateBatch] = []
    head = window  # next stream position to insert
    tail = 0  # oldest stream position still in the window
    while head < edges.shape[0]:
        if num_batches is not None and len(batches) >= num_batches:
            break
        upper = min(head + batch_size, edges.shape[0])
        grown = upper - head
        batches.append(
            UpdateBatch(
                add=edges[head:upper],
                add_weights=None if weights is None else weights[head:upper],
                remove=edges[tail : tail + grown],
                reweight=_empty_edges(),
                reweight_weights=None,
            )
        )
        head = upper
        tail += grown
    return UpdateTrace(
        name=f"window-rmat{scale}",
        num_vertices=num_vertices,
        base_edges=edges[:window],
        base_weights=None if weights is None else weights[:window],
        batches=batches,
    )


def weight_churn_trace(
    scale: int,
    edge_factor: int = 8,
    batch_size: int = 1000,
    num_batches: int = 20,
    seed: int = 0,
) -> UpdateTrace:
    """Fixed topology, churning weights: each batch re-draws the weights
    of a random edge subset (always a weighted trace)."""
    num_vertices, edges, weights = _edge_stream(scale, edge_factor, seed, True)
    rng = _stream_rng(seed, _STREAM_TAG_CHURN)
    batches: list[UpdateBatch] = []
    for _ in range(num_batches):
        size = min(batch_size, edges.shape[0])
        picked = rng.choice(edges.shape[0], size=size, replace=False)
        batches.append(
            UpdateBatch(
                add=_empty_edges(),
                add_weights=None,
                remove=_empty_edges(),
                reweight=edges[picked],
                reweight_weights=rng.uniform(_WEIGHT_LOW, _WEIGHT_HIGH, size=size),
            )
        )
    return UpdateTrace(
        name=f"churn-rmat{scale}",
        num_vertices=num_vertices,
        base_edges=edges,
        base_weights=weights,
        batches=batches,
    )


def make_trace(kind: str, scale: int, **kwargs) -> UpdateTrace:
    """Build one trace by kind name (the CLI and benchmark entry point)."""
    if kind == "grow":
        return grow_only_trace(scale, **kwargs)
    if kind == "window":
        return sliding_window_trace(scale, **kwargs)
    if kind == "churn":
        kwargs.pop("weighted", None)
        return weight_churn_trace(scale, **kwargs)
    raise DynamicGraphError(
        f"unknown trace kind {kind!r}; expected one of {TRACE_KINDS}"
    )
