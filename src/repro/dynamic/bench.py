"""Measurement harness shared by ``repro mutate-bench`` and
``benchmarks/bench_dynamic.py``.

One function drives a full update trace against a :class:`DynamicGraph`
and measures the three quantities the dynamic subsystem is judged on:

1. **updates/s** — streamed edge operations applied *and* published per
   second (delta application + incremental snapshot maintenance);
2. **maintenance speedup** — incremental per-batch maintenance vs the
   from-scratch rebuild a static pipeline would pay (``from_edges`` +
   ``SamplerState.full_build`` on the same logical edge set), sampled at
   a few points along the trace;
3. **walk-throughput retention** — hops/s of the batch engine on the
   final snapshot (kernel loaded from the snapshot's prepared state)
   relative to the same engine on a freshly built static graph, with
   paths and ``EngineStats`` required to be bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.dynamic.graph import DynamicGraph, GraphSnapshot
from repro.dynamic.state import SamplerState
from repro.dynamic.workload import UpdateTrace, apply_batch
from repro.engines import hops_per_second
from repro.graph.builders import from_edges
from repro.graph.csr import CSRGraph
from repro.obs.metrics import dynamic_graph_into, global_registry
from repro.sampling.base import derive_seed
from repro.sampling.vectorized import make_kernel
from repro.walks.base import WalkSpec, make_queries
from repro.walks.batch import run_walks_batch
from repro.walks.reference import EngineStats


@dataclass
class MutateBenchReport:
    """Everything one trace run measured (JSON-ready plain fields)."""

    trace: str
    algorithm: str
    num_batches: int
    ops_applied: int
    final_epoch: int
    final_edges: int
    # Incremental maintenance (delta application + snapshot publication).
    incremental_seconds: float
    updates_per_second: float
    mean_snapshot_seconds: float
    # Compaction and delta-overlay accounting (DynamicGraph counters).
    compactions: int
    compaction_seconds: float
    updates_applied: int
    delta_edges: int
    delta_peak: int
    # Sampled from-scratch rebuild cost and the resulting speedup.
    full_rebuild_samples: int
    mean_full_rebuild_seconds: float
    maintenance_speedup: float
    # Walk-throughput retention on the final snapshot.
    dynamic_hops_per_second: float
    static_hops_per_second: float
    walk_retention: float
    snapshot_equivalent: bool

    def summary(self) -> str:
        lines = [
            f"trace:      {self.trace} ({self.num_batches} batches, "
            f"{self.ops_applied} edge ops, final |E| {self.final_edges}, "
            f"epoch {self.final_epoch})",
            f"updates:    {self.updates_per_second:,.0f} ops/s incremental "
            f"(mean snapshot {self.mean_snapshot_seconds * 1e3:.1f} ms)",
            f"compaction: {self.compactions} compactions, "
            f"{self.compaction_seconds:.3f}s total "
            f"({self.updates_applied} updates applied; "
            f"delta {self.delta_edges} final, {self.delta_peak} peak)",
            f"rebuild:    {self.mean_full_rebuild_seconds * 1e3:.1f} ms "
            f"from-scratch (x{self.full_rebuild_samples} samples) -> "
            f"incremental speedup {self.maintenance_speedup:.1f}x",
            f"retention:  {self.walk_retention:.3f}x walk throughput vs static "
            f"({self.dynamic_hops_per_second:,.0f} vs "
            f"{self.static_hops_per_second:,.0f} hops/s), "
            f"bit-identical={self.snapshot_equivalent}",
        ]
        return "\n".join(lines)


def rebuild_from_edge_set(
    edges: np.ndarray,
    weights: np.ndarray | None,
    num_vertices: int,
    name: str,
) -> tuple[CSRGraph, SamplerState]:
    """What a static pipeline rebuilds per update batch, given an edge
    set it already holds: a new CSR plus every prepared sampler
    structure.  This — and only this — is the timed rebuild baseline;
    extracting the edge list out of the dynamic overlay
    (``logical_edges``) is a cost of *our* measurement harness, not of a
    static pipeline, and stays outside the timer."""
    rebuilt = from_edges(edges, num_vertices=num_vertices, weights=weights,
                         name=name)
    return rebuilt, SamplerState.full_build(rebuilt)


def fresh_static_build(
    graph: DynamicGraph,
) -> tuple[CSRGraph, SamplerState]:
    """A from-scratch build of the dynamic graph's current edge set."""
    edges, weights = graph.logical_edges()
    return rebuild_from_edge_set(edges, weights, graph.num_vertices, graph.name)


def snapshot_matches_static(
    snapshot: GraphSnapshot, graph: CSRGraph, state: SamplerState
) -> bool:
    """Bit-exact comparison of a snapshot against a from-scratch build."""
    dynamic_graph = snapshot.graph
    pairs = [
        (dynamic_graph.row_ptr, graph.row_ptr),
        (dynamic_graph.col, graph.col),
    ]
    if dynamic_graph.is_weighted != graph.is_weighted:
        return False
    if dynamic_graph.is_weighted:
        pairs.append((dynamic_graph.weights, graph.weights))
    pairs.extend(
        (snapshot.sampler_state.arrays()[name], state.arrays()[name])
        for name in ("alias_prob", "alias_index", "its_cdf", "its_row_totals",
                     "edge_keys", "strategy")
    )
    return all(np.array_equal(a, b) for a, b in pairs)


def _timed_walks(
    graph: CSRGraph, spec: WalkSpec, queries, seed: int, kernel
) -> tuple[object, EngineStats, float]:
    stats = EngineStats()
    started = time.perf_counter()
    results = run_walks_batch(graph, spec, queries, seed=seed, stats=stats,
                              kernel=kernel)
    return results, stats, time.perf_counter() - started


def _stats_equal(a: EngineStats, b: EngineStats) -> bool:
    return (
        a.total_hops == b.total_hops
        and a.sampling_proposals == b.sampling_proposals
        and a.neighbor_reads == b.neighbor_reads
        and a.early_terminations == b.early_terminations
        and a.dangling_terminations == b.dangling_terminations
        and a.probabilistic_terminations == b.probabilistic_terminations
        and a.length_terminations == b.length_terminations
        and a.per_query_hops == b.per_query_hops
    )


def run_mutate_bench(
    trace: UpdateTrace,
    spec: WalkSpec,
    seed: int = 1,
    walk_queries: int = 512,
    full_rebuild_samples: int = 3,
    compaction_threshold: float = 0.25,
) -> MutateBenchReport:
    """Drive one update trace end to end and measure it (see module doc)."""
    dynamic = trace.build_dynamic(compaction_threshold=compaction_threshold)
    snapshot = dynamic.snapshot()  # epoch 0: the one-time cold build, untimed

    num_batches = len(trace.batches)
    sample_at = set()
    if num_batches and full_rebuild_samples > 0:
        count = min(full_rebuild_samples, num_batches)
        sample_at = {
            int(round(i * (num_batches - 1) / max(1, count - 1)))
            for i in range(count)
        }

    ops = 0
    incremental_seconds = 0.0
    snapshot_seconds = 0.0
    rebuild_seconds: list[float] = []
    compaction_base = dynamic.compaction_seconds
    for index, batch in enumerate(trace.batches):
        started = time.perf_counter()
        apply_batch(dynamic, batch)
        mid = time.perf_counter()
        snapshot = dynamic.snapshot()
        finished = time.perf_counter()
        incremental_seconds += finished - started
        snapshot_seconds += finished - mid
        ops += batch.num_ops
        if index in sample_at:
            # Extract the edge set untimed (a static pipeline already
            # holds its edges); time only the rebuild itself.
            edges, weights = dynamic.logical_edges()
            rebuild_started = time.perf_counter()
            rebuild_from_edge_set(edges, weights, dynamic.num_vertices,
                                  dynamic.name)
            rebuild_seconds.append(time.perf_counter() - rebuild_started)

    mean_incremental = incremental_seconds / num_batches if num_batches else 0.0
    mean_rebuild = float(np.mean(rebuild_seconds)) if rebuild_seconds else 0.0
    speedup = (
        mean_rebuild / mean_incremental
        if mean_incremental > 0 and mean_rebuild > 0
        else float("inf")
    )

    # Final-state equivalence + walk-throughput retention.
    static_graph, static_state = fresh_static_build(dynamic)
    equivalent = snapshot_matches_static(snapshot, static_graph, static_state)

    queries = make_queries(static_graph, walk_queries,
                           seed=derive_seed(seed, "queries"))
    walk_seed = derive_seed(seed, "engine")
    dynamic_kernel = make_kernel(spec.make_sampler())
    arrays = snapshot.kernel_arrays(dynamic_kernel)
    if arrays:
        dynamic_kernel.load_state(arrays)
    else:
        dynamic_kernel.prepare(snapshot.graph)
    static_kernel = make_kernel(spec.make_sampler())
    static_kernel.prepare(static_graph)
    dynamic_results, dynamic_stats, dynamic_s = _timed_walks(
        snapshot.graph, spec, queries, walk_seed, dynamic_kernel
    )
    static_results, static_stats, static_s = _timed_walks(
        static_graph, spec, queries, walk_seed, static_kernel
    )
    equivalent = (
        equivalent
        and _stats_equal(dynamic_stats, static_stats)
        and all(
            np.array_equal(a, b)
            for a, b in zip(dynamic_results.paths, static_results.paths)
        )
    )
    dynamic_rate = hops_per_second(dynamic_stats.total_hops, dynamic_s)
    static_rate = hops_per_second(static_stats.total_hops, static_s)

    # Feed the telemetry layer once per run so `repro metrics
    # mutate-bench ...` exports the dynamic-graph counters.
    dynamic_graph_into(global_registry(), dynamic)

    return MutateBenchReport(
        trace=trace.name,
        algorithm=spec.name,
        num_batches=num_batches,
        ops_applied=ops,
        final_epoch=dynamic.epoch,
        final_edges=dynamic.num_edges,
        incremental_seconds=incremental_seconds,
        updates_per_second=(
            ops / incremental_seconds if incremental_seconds > 0 else float("inf")
        ),
        mean_snapshot_seconds=(
            snapshot_seconds / num_batches if num_batches else 0.0
        ),
        compactions=dynamic.compactions,
        compaction_seconds=dynamic.compaction_seconds - compaction_base,
        updates_applied=dynamic.updates_applied,
        delta_edges=dynamic.delta_edges,
        delta_peak=dynamic.delta_peak,
        full_rebuild_samples=len(rebuild_seconds),
        mean_full_rebuild_seconds=mean_rebuild,
        maintenance_speedup=speedup,
        dynamic_hops_per_second=dynamic_rate,
        static_hops_per_second=static_rate,
        walk_retention=(
            dynamic_rate / static_rate if static_rate > 0 else float("inf")
        ),
        snapshot_equivalent=bool(equivalent),
    )
