"""Prepared sampler state with incremental, bit-identical maintenance.

Every software engine pays a per-graph preparation cost before its first
hop: DeepWalk's alias tables (``graph/alias.py``), the second-order
kernels' sorted edge-key array (``sampling/vectorized.py``), and the
ITS-style per-vertex CDF rows the weighted baselines scan.  On a static
graph that cost is paid once; on a mutating graph a naive engine pays it
again after *every* update batch, which is exactly the rebuild tax the
dynamic-graph papers (LightRW, FlexiWalker) structure their designs
around.

:class:`SamplerState` bundles all of that prepared state into one
immutable value, and :func:`advance_graph_and_state` rebuilds it
*incrementally*: vertices whose neighborhoods changed ("dirty" rows) are
rebuilt with the same per-row builders a from-scratch build uses, while
every clean row's slots are copied bit-for-bit from the previous state.
Because alias tables, CDF rows and edge keys are all row-local, the
result is **bit-identical** to ``SamplerState.full_build`` on a freshly
constructed CSR of the same logical graph — the property the dynamic
subsystem's snapshot-equivalence guarantee rests on, enforced by the
property tests in ``tests/dynamic/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import DynamicGraphError
from repro.graph.alias import build_alias_slots, build_alias_table
from repro.graph.csr import CSRGraph
from repro.sampling.hybrid import (
    HybridKernel,
    resolve_strategy_codes,
    select_row_strategy,
    select_strategies,
)
from repro.sampling.its import build_its_cdf, build_its_row_totals
from repro.sampling.vectorized import (
    AliasKernel,
    ITSKernel,
    RejectionKernel,
    ReservoirKernel,
    VectorizedKernel,
    build_edge_keys,
)

_INDEX_DTYPE = np.int64
_WEIGHT_DTYPE = np.float64


@dataclass(frozen=True, eq=False)
class SamplerState:
    """Every engine's prepared per-graph arrays, as one immutable value.

    All four arrays are aligned with the owning graph's CSR column list
    (``edge_keys`` is additionally sorted, which for the sorted-neighbor
    CSRs this subsystem produces is the identity order).  A snapshot
    carries one of these so engines can be swapped onto a new graph
    version without re-running any preparation pass.
    """

    alias_prob: np.ndarray
    alias_index: np.ndarray
    its_cdf: np.ndarray
    its_row_totals: np.ndarray
    edge_keys: np.ndarray
    #: Per-vertex hybrid strategy codes, shape ``(num_vertices, 2)`` —
    #: the cost model's first-order and second-order choices (see
    #: :func:`repro.sampling.hybrid.select_strategies`), maintained with
    #: the default :class:`~repro.sampling.hybrid.HybridConfig` so a
    #: snapshot's selection map matches any freshly auto-prepared engine.
    strategy: np.ndarray

    def __post_init__(self) -> None:
        for array in (self.alias_prob, self.alias_index, self.its_cdf,
                      self.its_row_totals, self.edge_keys, self.strategy):
            array.setflags(write=False)
        if not (
            self.alias_prob.shape
            == self.alias_index.shape
            == self.its_cdf.shape
            == self.edge_keys.shape
        ):
            raise DynamicGraphError("sampler state arrays must align")
        if self.strategy.shape != (self.its_row_totals.size, 2):
            raise DynamicGraphError(
                "strategy map must hold one (first, second)-order pair per vertex"
            )

    @classmethod
    def full_build(cls, graph: CSRGraph) -> "SamplerState":
        """Build every prepared structure from scratch (the rebuild tax a
        static pipeline pays per update batch; the incremental path in
        :func:`advance_graph_and_state` must match this bit-for-bit)."""
        table = build_alias_table(graph)
        return cls(
            alias_prob=table.prob,
            alias_index=table.alias,
            its_cdf=build_its_cdf(graph),
            its_row_totals=build_its_row_totals(graph),
            edge_keys=build_edge_keys(graph),
            strategy=select_strategies(graph),
        )

    @property
    def num_slots(self) -> int:
        return self.alias_prob.size

    def arrays(self) -> dict[str, np.ndarray]:
        """All prepared arrays, keyed with the vectorized kernels' own
        ``state_arrays`` names (plus the ITS sampler's pair)."""
        return {
            "alias_prob": self.alias_prob,
            "alias_index": self.alias_index,
            "its_cdf": self.its_cdf,
            "its_row_totals": self.its_row_totals,
            "edge_keys": self.edge_keys,
            "strategy": self.strategy,
        }

    def load_its_sampler(self, sampler, graph: CSRGraph) -> None:
        """Hand the maintained CDF rows to an
        :class:`~repro.sampling.its.InverseTransformSampler` prepared for
        ``graph`` (this state's owning snapshot graph) — the scalar-side
        equivalent of :meth:`kernel_arrays`, skipping the sampler's own
        O(|E|) ``prepare`` pass."""
        sampler.load_state(self.its_cdf, self.its_row_totals, graph)

    def kernel_arrays(self, kernel: VectorizedKernel) -> dict[str, np.ndarray]:
        """The subset of prepared arrays ``kernel`` actually consumes.

        Shaped for :meth:`~repro.sampling.vectorized.VectorizedKernel.load_state`;
        an empty mapping means the kernel needs no prepared state (uniform
        sampling, first-order reservoir), so a swap can skip both the load
        and any shared-memory broadcast.
        """
        if isinstance(kernel, HybridKernel):
            # Same collapse the kernel's own prepare would run (dynamic
            # graphs carry no edge types), so a snapshot hand-off and a
            # fresh auto prepare agree on every row's strategy.
            arrays = {
                "hybrid_strategy": resolve_strategy_codes(kernel.base, self.strategy)
            }
            for sub in kernel.sub_state_names():
                arrays[sub] = self.arrays()[sub]
            return arrays
        if isinstance(kernel, AliasKernel):
            return {"alias_prob": self.alias_prob, "alias_index": self.alias_index}
        if isinstance(kernel, ITSKernel):
            return {"its_cdf": self.its_cdf, "its_row_totals": self.its_row_totals}
        if isinstance(kernel, RejectionKernel):
            return {"edge_keys": self.edge_keys}
        if isinstance(kernel, ReservoirKernel):
            return {"edge_keys": self.edge_keys} if kernel.second_order else {}
        return {}


def _assemble_csr(
    prev_graph: CSRGraph,
    dirty_rows: Mapping[int, tuple[np.ndarray, np.ndarray | None]],
    name: str,
) -> tuple[CSRGraph, np.ndarray, np.ndarray, np.ndarray]:
    """Build the next CSR from the previous one plus replaced rows.

    Returns ``(graph, clean_dst, clean_src, row_ptr)`` where ``clean_dst``
    and ``clean_src`` are aligned position arrays mapping every edge of an
    unchanged row from its slot in the new arrays to its slot in the old
    ones — the gather the sampler-state copy reuses, computed once.
    """
    n = prev_graph.num_vertices
    weighted = prev_graph.is_weighted
    new_deg = prev_graph.degrees().copy()
    for vertex, (cols, _) in dirty_rows.items():
        new_deg[vertex] = cols.size
    row_ptr = np.zeros(n + 1, dtype=_INDEX_DTYPE)
    np.cumsum(new_deg, out=row_ptr[1:])
    num_edges = int(row_ptr[-1])

    col = np.empty(num_edges, dtype=_INDEX_DTYPE)
    weights = np.empty(num_edges, dtype=_WEIGHT_DTYPE) if weighted else None

    dirty_mask = np.zeros(n, dtype=bool)
    if dirty_rows:
        dirty_mask[np.fromiter(dirty_rows, dtype=_INDEX_DTYPE, count=len(dirty_rows))] = True
    clean = np.nonzero(~dirty_mask & (new_deg > 0))[0]
    counts = new_deg[clean]
    total_clean = int(counts.sum())
    # New-array position of every clean edge, and its source position in
    # the previous arrays: rows keep their internal order, only their
    # starting offsets shift.
    within = np.arange(total_clean, dtype=_INDEX_DTYPE) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    clean_dst = np.repeat(row_ptr[:-1][clean], counts) + within
    clean_src = np.repeat(prev_graph.row_ptr[:-1][clean], counts) + within
    col[clean_dst] = prev_graph.col[clean_src]
    if weighted:
        weights[clean_dst] = prev_graph.weights[clean_src]

    for vertex, (cols, row_weights) in dirty_rows.items():
        lo, hi = int(row_ptr[vertex]), int(row_ptr[vertex + 1])
        col[lo:hi] = cols
        if weighted:
            weights[lo:hi] = row_weights

    graph = CSRGraph(row_ptr=row_ptr, col=col, weights=weights, name=name)
    return graph, clean_dst, clean_src, row_ptr


def advance_graph_and_state(
    prev_graph: CSRGraph,
    prev_state: SamplerState,
    dirty_rows: Mapping[int, tuple[np.ndarray, np.ndarray | None]],
    name: str | None = None,
) -> tuple[CSRGraph, SamplerState]:
    """Produce the next ``(CSRGraph, SamplerState)`` version incrementally.

    ``dirty_rows`` maps each changed vertex to its complete new
    neighborhood ``(col, weights)`` — ``col`` ascending, ``weights`` None
    on unweighted graphs.  Unchanged rows are copied (graph arrays and
    every prepared structure alike); dirty rows are rebuilt with the same
    per-row builders ``SamplerState.full_build`` uses, so the output is
    bit-identical to a from-scratch build of the same logical graph while
    costing O(|E| copies + rebuilt-row work) instead of the full
    alias/CDF construction passes.
    """
    weighted = prev_graph.is_weighted
    graph, clean_dst, clean_src, row_ptr = _assemble_csr(
        prev_graph, dirty_rows, name or prev_graph.name
    )
    num_edges = graph.num_edges

    alias_prob = np.empty(num_edges, dtype=_WEIGHT_DTYPE)
    alias_index = np.empty(num_edges, dtype=_INDEX_DTYPE)
    its_cdf = np.empty(num_edges, dtype=_WEIGHT_DTYPE)
    alias_prob[clean_dst] = prev_state.alias_prob[clean_src]
    alias_index[clean_dst] = prev_state.alias_index[clean_src]
    its_cdf[clean_dst] = prev_state.its_cdf[clean_src]
    its_row_totals = prev_state.its_row_totals.copy()
    # Clean rows keep their strategy; dirty rows re-enter the cost model
    # below with the same row-local function a full build uses, so the
    # selection map stays bit-identical to from-scratch selection.
    strategy = prev_state.strategy.copy()

    for vertex, (cols, row_weights) in dirty_rows.items():
        lo, hi = int(row_ptr[vertex]), int(row_ptr[vertex + 1])
        degree = hi - lo
        strategy[vertex] = select_row_strategy(
            degree, row_weights if weighted else None
        )
        if degree == 0:
            its_row_totals[vertex] = 0.0
            continue
        if weighted:
            prob, alias = build_alias_slots(row_weights)
            alias_prob[lo:hi] = prob
            alias_index[lo:hi] = alias
            its_cdf[lo:hi] = np.cumsum(row_weights)
            # Pairwise sum, matching build_its_row_totals (not the CDF's
            # sequential last entry — they differ in the final ulp).
            its_row_totals[vertex] = row_weights.sum()
        else:
            alias_prob[lo:hi] = 1.0
            alias_index[lo:hi] = np.arange(degree, dtype=_INDEX_DTYPE)
            its_cdf[lo:hi] = np.arange(1, degree + 1, dtype=_WEIGHT_DTYPE)
            its_row_totals[vertex] = float(degree)

    # Sorted neighbor lists make (src * |V| + dst) globally sorted already;
    # the fallback sort mirrors build_edge_keys exactly for the (never
    # produced here) unsorted case, keeping bit-identity unconditional.
    sources = np.repeat(
        np.arange(graph.num_vertices, dtype=_INDEX_DTYPE), graph.degrees()
    )
    edge_keys = sources * np.int64(graph.num_vertices) + graph.col
    if not graph.cols_sorted:  # pragma: no cover - dirty rows arrive sorted
        edge_keys = np.sort(edge_keys)

    state = SamplerState(
        alias_prob=alias_prob,
        alias_index=alias_index,
        its_cdf=its_cdf,
        its_row_totals=its_row_totals,
        edge_keys=edge_keys,
        strategy=strategy,
    )
    return graph, state
