"""Dynamic-graph subsystem: streamed updates, versioned snapshots, serving.

``DynamicGraph`` ingests streamed edge updates into per-vertex delta
buffers over an immutable CSR base (compacting once deltas exceed a
threshold) and publishes epoch-versioned immutable snapshots —
``(CSRGraph, SamplerState)`` pairs whose prepared sampler structures are
maintained *incrementally* yet bit-identically to a from-scratch build.
Engines swap between snapshots without cold preparation
(``PreparedEngine.swap_snapshot``), and the async ``WalkService`` applies
swaps on epoch boundaries (``WalkService.update_graph``) so in-flight
requests finish on the version they started on.
"""

from repro.dynamic.bench import (
    MutateBenchReport,
    fresh_static_build,
    run_mutate_bench,
    snapshot_matches_static,
)
from repro.dynamic.graph import DynamicGraph, GraphSnapshot
from repro.dynamic.state import SamplerState, advance_graph_and_state
from repro.dynamic.workload import (
    TRACE_KINDS,
    UpdateBatch,
    UpdateTrace,
    apply_batch,
    grow_only_trace,
    make_trace,
    sliding_window_trace,
    weight_churn_trace,
)

__all__ = [
    "DynamicGraph",
    "GraphSnapshot",
    "MutateBenchReport",
    "SamplerState",
    "TRACE_KINDS",
    "UpdateBatch",
    "UpdateTrace",
    "advance_graph_and_state",
    "apply_batch",
    "fresh_static_build",
    "grow_only_trace",
    "make_trace",
    "run_mutate_bench",
    "sliding_window_trace",
    "snapshot_matches_static",
    "weight_churn_trace",
]
