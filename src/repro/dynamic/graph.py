"""Versioned mutable graph: streamed updates, snapshots, compaction.

:class:`DynamicGraph` is the write side of the dynamic subsystem.  It
holds an immutable CSR **base** plus per-vertex **delta buffers**: each
touched vertex carries a small override map of *changes* against its
base row — inserted edges, re-drawn weights, and tombstones for removed
base edges — so a streamed ``add_edges`` / ``remove_edges`` /
``update_weights`` op costs one dictionary write plus one O(log d)
adjacency probe, independent of the vertex's degree (touching an RMAT
hub must not copy its whole neighbor list).  Once the deltas grow past
a configurable fraction of the base, they are **compacted** back into a
fresh ``CSRGraph`` (amortized O(|E|)), bounding overlay memory and
per-snapshot merge cost.

The read side is :meth:`DynamicGraph.snapshot`: an epoch-versioned,
immutable ``(CSRGraph, SamplerState)`` pair.  Snapshots are built
*incrementally* from the previous epoch — only rows dirtied since the
last snapshot are rebuilt (see :mod:`repro.dynamic.state`) — and are
bit-identical to a from-scratch build of the same logical edge set.
Engines and the serving layer keep walking one epoch while updates
stream into the next; swapping an engine onto a new epoch is
``PreparedEngine.swap_snapshot`` (no pool respawn, no cold prepare).

Model notes: the vertex set is fixed at construction; the graph is
simple (at most one directed edge per ``(src, dst)`` — a duplicate
insert updates the weight in place); MetaPath's edge/vertex types are
not supported.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dynamic.state import SamplerState, _assemble_csr, advance_graph_and_state
from repro.errors import DynamicGraphError
from repro.graph.builders import validate_edge_weights
from repro.graph.csr import CSRGraph
from repro.obs.trace import span as _trace_span

_INDEX_DTYPE = np.int64
_WEIGHT_DTYPE = np.float64


@dataclass(frozen=True, eq=False)
class GraphSnapshot:
    """One published graph version: immutable and fully prepared.

    ``epoch`` is a monotonically increasing version id (0 is the
    construction-time state).  ``graph`` is a plain ``CSRGraph`` every
    engine already understands; ``sampler_state`` carries the prepared
    kernel arrays (alias tables, ITS CDF rows, edge keys) so swapping an
    engine onto this snapshot needs no preparation pass.
    """

    epoch: int
    graph: CSRGraph
    sampler_state: SamplerState

    def kernel_arrays(self, kernel) -> dict[str, np.ndarray]:
        """Prepared arrays for one vectorized kernel (possibly empty)."""
        return self.sampler_state.kernel_arrays(kernel)


def _as_edge_array(edges) -> tuple[np.ndarray, np.ndarray]:
    array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if array.size == 0:
        array = array.reshape(0, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise DynamicGraphError("edges must be a sequence of (src, dst) pairs")
    return array[:, 0].astype(_INDEX_DTYPE), array[:, 1].astype(_INDEX_DTYPE)


class DynamicGraph:
    """A mutable directed graph serving immutable versioned snapshots.

    Parameters
    ----------
    base:
        Starting graph (epoch 0).  Must have sorted neighbor lists (every
        builder in :mod:`repro.graph.builders` produces them) and no
        edge/vertex types.  Weightedness is fixed for the graph's
        lifetime: updates to a weighted base must carry weights, updates
        to an unweighted base must not.
    compaction_threshold:
        Fold the delta overlay back into a fresh CSR base once the
        overlay holds more than this fraction of the base's edges.
    min_compaction_edges:
        Never compact below this overlay size — tiny graphs would
        otherwise compact on every update.
    """

    def __init__(
        self,
        base: CSRGraph,
        compaction_threshold: float = 0.25,
        min_compaction_edges: int = 4096,
    ) -> None:
        if base.edge_types is not None or base.vertex_types is not None:
            raise DynamicGraphError(
                "dynamic graphs do not support edge/vertex types (MetaPath "
                "schemas); use a plain weighted or unweighted graph"
            )
        if not base.cols_sorted:
            raise DynamicGraphError(
                "dynamic graphs require sorted neighbor lists; rebuild the "
                "base with from_edges(..., sort_neighbors=True)"
            )
        if compaction_threshold <= 0:
            raise DynamicGraphError(
                f"compaction_threshold must be > 0, got {compaction_threshold}"
            )
        if min_compaction_edges < 0:
            raise DynamicGraphError(
                f"min_compaction_edges must be >= 0, got {min_compaction_edges}"
            )
        self._base = base
        self._weighted = base.is_weighted
        self._compaction_threshold = float(compaction_threshold)
        self._min_compaction_edges = int(min_compaction_edges)
        #: Per-vertex delta buffers, relative to the current base:
        #: ``vertex -> {dst: weight-or-None}``.  A float is an inserted or
        #: re-weighted edge (1.0 on unweighted graphs); ``None`` is a
        #: tombstone for a removed *base* edge (removing an edge that only
        #: ever lived in the delta just deletes its entry).
        self._adj: dict[int, dict[int, float | None]] = {}
        #: Vertices whose rows changed since the last published snapshot.
        self._dirty: set[int] = set()
        self._num_edges = base.num_edges
        self._delta_entries = 0
        self._epoch = 0
        self._published: GraphSnapshot | None = None
        #: Callbacks invoked with each newly published GraphSnapshot
        #: (epoch 0 included).  The serve layer's hot-walk cache hooks in
        #: here to invalidate stale pools the moment an epoch exists.
        self._epoch_listeners: list = []
        self.updates_applied = 0
        self.compactions = 0
        self.compaction_seconds = 0.0
        #: High-water mark of :attr:`delta_edges` — how close the overlay
        #: came to the compaction threshold (reported by mutate-bench).
        self.delta_peak = 0

    # ------------------------------------------------------------------
    # Read API (current logical graph, base + overlay)
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._base.num_vertices

    @property
    def num_edges(self) -> int:
        """Edge count of the current logical graph (overlay included)."""
        return self._num_edges

    @property
    def is_weighted(self) -> bool:
        return self._weighted

    @property
    def name(self) -> str:
        return self._base.name

    @property
    def epoch(self) -> int:
        """Epoch of the most recently published snapshot."""
        return self._epoch

    @property
    def delta_edges(self) -> int:
        """Entries currently held in the per-vertex delta buffers."""
        return self._delta_entries

    @property
    def has_pending_updates(self) -> bool:
        """Whether updates since the last snapshot await publication."""
        return bool(self._dirty)

    def degree(self, vertex: int) -> int:
        self._check_vertex(vertex)
        delta = self._adj.get(vertex)
        if not delta:
            return self._base.degree(vertex)
        degree = self._base.degree(vertex)
        for dst, weight in delta.items():
            if weight is None:
                degree -= 1
            elif not self._base.has_edge(vertex, dst):
                degree += 1
        return degree

    def neighbors(self, vertex: int) -> np.ndarray:
        """Current neighbor list of ``vertex``, ascending."""
        cols, _ = self._merged_row(vertex)
        return cols

    def neighbor_weights(self, vertex: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors` (ones when unweighted)."""
        cols, weights = self._merged_row(vertex)
        if weights is None:
            return np.ones(cols.size, dtype=_WEIGHT_DTYPE)
        return weights

    def has_edge(self, src: int, dst: int) -> bool:
        self._check_vertex(src)
        delta = self._adj.get(src)
        if delta is not None and dst in delta:
            return delta[dst] is not None
        return self._base.has_edge(src, dst)

    def logical_edges(self) -> tuple[np.ndarray, np.ndarray | None]:
        """The full current edge set as ``(edges, weights)``, sorted by
        ``(src, dst)`` — what a from-scratch rebuild would ingest."""
        n = self.num_vertices
        sources: list[np.ndarray] = []
        dests: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        for vertex in range(n):
            dst, row_weights = self._merged_row(vertex)
            if dst.size == 0:
                continue
            sources.append(np.full(dst.size, vertex, dtype=_INDEX_DTYPE))
            dests.append(dst)
            if self._weighted:
                weights.append(row_weights)
        if not sources:
            empty = np.empty((0, 2), dtype=_INDEX_DTYPE)
            return empty, (np.empty(0, dtype=_WEIGHT_DTYPE) if self._weighted else None)
        edges = np.stack(
            [np.concatenate(sources), np.concatenate(dests)], axis=1
        )
        return edges, (np.concatenate(weights) if self._weighted else None)

    # ------------------------------------------------------------------
    # Write API (streamed updates)
    # ------------------------------------------------------------------
    def add_edges(
        self, edges, weights: Sequence[float] | np.ndarray | None = None
    ) -> int:
        """Insert directed edges; returns how many were *new*.

        A duplicate ``(src, dst)`` updates the edge's weight in place
        (no-op on unweighted graphs) — the graph stays simple.  Weighted
        graphs require aligned ``weights``; unweighted graphs reject
        them.  Edges apply in order; an invalid edge raises
        :class:`~repro.errors.DynamicGraphError` and leaves earlier edges
        of the call applied.
        """
        src, dst, weight_array = self._check_update(edges, weights, need_weights=True)
        inserted = 0
        for k in range(src.size):
            s, d = int(src[k]), int(dst[k])
            delta = self._delta(s)
            w = float(weight_array[k]) if weight_array is not None else 1.0
            if d in delta:
                present = delta[d] is not None
            else:
                present = self._base.has_edge(s, d)
                self._delta_entries += 1
            if not present:
                inserted += 1
                self._num_edges += 1
            delta[d] = w
            self._dirty.add(s)
        self.updates_applied += src.size
        self._maybe_compact()
        return inserted

    def remove_edges(self, edges) -> None:
        """Delete directed edges; a missing edge is an error.

        Edges apply in order (so removing a vertex's whole neighborhood
        in one call is fine, and its degree drops to 0).
        """
        src, dst, _ = self._check_update(edges, None, need_weights=False)
        for k in range(src.size):
            s, d = int(src[k]), int(dst[k])
            delta = self._delta(s)
            in_delta = d in delta
            in_base = self._base.has_edge(s, d)
            present = delta[d] is not None if in_delta else in_base
            if not present:
                raise DynamicGraphError(
                    f"cannot remove edge {s} -> {d}: it does not exist"
                )
            if in_base:
                # Tombstone the base edge (a new entry unless the delta
                # already overrode this destination).
                if not in_delta:
                    self._delta_entries += 1
                delta[d] = None
            else:
                # The edge lives only in the delta: drop its entry.
                del delta[d]
                self._delta_entries -= 1
            self._num_edges -= 1
            self._dirty.add(s)
        self.updates_applied += src.size
        self._maybe_compact()

    def update_weights(self, edges, weights: Sequence[float] | np.ndarray) -> None:
        """Re-weight existing edges (weighted graphs only)."""
        if not self._weighted:
            raise DynamicGraphError(
                "cannot update weights on an unweighted dynamic graph"
            )
        src, dst, weight_array = self._check_update(edges, weights, need_weights=True)
        for k in range(src.size):
            s, d = int(src[k]), int(dst[k])
            delta = self._delta(s)
            in_delta = d in delta
            present = delta[d] is not None if in_delta else self._base.has_edge(s, d)
            if not present:
                raise DynamicGraphError(
                    f"cannot re-weight edge {s} -> {d}: it does not exist"
                )
            if not in_delta:
                self._delta_entries += 1
            delta[d] = float(weight_array[k])
            self._dirty.add(s)
        self.updates_applied += src.size
        self._maybe_compact()

    # ------------------------------------------------------------------
    # Snapshots and compaction
    # ------------------------------------------------------------------
    def snapshot(self) -> GraphSnapshot:
        """Publish the current logical graph as an immutable epoch.

        With no pending updates this returns the cached snapshot (same
        object, same epoch).  Otherwise a new epoch is built
        incrementally from the previous one: dirty rows are rebuilt,
        clean rows — graph arrays and prepared sampler state alike — are
        copied bit-for-bit (see :func:`repro.dynamic.state.advance_graph_and_state`).
        """
        previous = self._published
        if previous is None:
            # Epoch 0: the one unavoidable from-scratch preparation.
            previous = GraphSnapshot(
                epoch=self._epoch,
                graph=self._base,
                sampler_state=SamplerState.full_build(self._base),
            )
            self._published = previous
            self._notify_epoch(previous)
        if not self._dirty:
            return previous
        with _trace_span("dynamic.snapshot", epoch=self._epoch + 1,
                         dirty_rows=len(self._dirty)):
            dirty_rows = {v: self._merged_row(v) for v in self._dirty}
            graph, state = advance_graph_and_state(
                previous.graph,
                previous.sampler_state,
                dirty_rows,
                name=self._base.name,
            )
            self._epoch += 1
            snapshot = GraphSnapshot(
                epoch=self._epoch, graph=graph, sampler_state=state
            )
            self._published = snapshot
            self._dirty.clear()
            self._notify_epoch(snapshot)
        return snapshot

    def add_epoch_listener(self, listener) -> None:
        """Register ``listener(snapshot)`` for every published epoch.

        Fires on each *new* publication (including the lazy epoch-0
        build); re-returning a cached snapshot does not re-fire.  The
        hot-walk cache's :meth:`repro.serve.cache.HotWalkCache.on_epoch`
        is the canonical listener — attaching it here invalidates stale
        pools at the write side, without waiting for the serve layer to
        apply the swap.
        """
        self._epoch_listeners.append(listener)

    def _notify_epoch(self, snapshot: GraphSnapshot) -> None:
        for listener in self._epoch_listeners:
            listener(snapshot)

    @property
    def needs_compaction(self) -> bool:
        limit = max(
            self._min_compaction_edges,
            int(self._compaction_threshold * self._base.num_edges),
        )
        return self._delta_entries > limit

    def compact(self) -> None:
        """Fold the delta overlay into a fresh CSR base (amortized O(|E|)).

        Purely representational: the logical graph, the dirty set and the
        published epoch are unchanged, so snapshots before and after a
        compaction are bit-identical.  Runs automatically after an update
        crosses the threshold; callers only need it to bound memory ahead
        of a known burst.
        """
        if not self._adj:
            return
        with _trace_span("dynamic.compact", delta_edges=self._delta_entries):
            started = time.perf_counter()
            dirty_rows = {
                v: self._merged_row(v) for v in self._adj if self._adj[v]
            }
            graph, _, _, _ = _assemble_csr(self._base, dirty_rows, self._base.name)
            self._base = graph
            self._adj.clear()
            self._delta_entries = 0
            self.compactions += 1
            self.compaction_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise DynamicGraphError(
                f"vertex {vertex} out of range for graph with "
                f"{self.num_vertices} vertices"
            )

    def _check_update(
        self, edges, weights, need_weights: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        src, dst = _as_edge_array(edges)
        n = self.num_vertices
        if src.size and (
            src.min() < 0 or dst.min() < 0 or src.max() >= n or dst.max() >= n
        ):
            bad = np.nonzero((src < 0) | (dst < 0) | (src >= n) | (dst >= n))[0][0]
            raise DynamicGraphError(
                f"edge {int(src[bad])} -> {int(dst[bad])} out of range for "
                f"graph with {n} vertices (the vertex set is fixed at "
                f"construction)"
            )
        weight_array = None
        if need_weights and self._weighted:
            if weights is None:
                raise DynamicGraphError(
                    "updates to a weighted dynamic graph must carry weights"
                )
            weight_array = np.asarray(weights, dtype=_WEIGHT_DTYPE)
            if weight_array.shape != src.shape:
                raise DynamicGraphError("weights must align with edges")
            validate_edge_weights(weight_array, src, dst)
        elif weights is not None:
            raise DynamicGraphError(
                "unweighted dynamic graphs do not accept edge weights"
            )
        return src, dst, weight_array

    def _delta(self, vertex: int) -> dict[int, float | None]:
        """The (possibly empty, created on demand) delta buffer of one
        vertex.  O(1): never copies the base row."""
        delta = self._adj.get(vertex)
        if delta is None:
            delta = {}
            self._adj[vertex] = delta
        return delta

    def _merged_row(self, vertex: int) -> tuple[np.ndarray, np.ndarray | None]:
        """One vertex's full current row as sorted ``(col, weights)``.

        O(deg + delta): merges the base row with the vertex's delta
        buffer.  Called once per dirty row per snapshot (and by the
        read API), never on the streamed-update path.
        """
        self._check_vertex(vertex)
        delta = self._adj.get(vertex)
        base_cols = self._base.neighbors(vertex)
        if not delta:
            cols = np.array(base_cols, dtype=_INDEX_DTYPE)
            if not self._weighted:
                return cols, None
            return cols, np.array(self._base.neighbor_weights(vertex),
                                  dtype=_WEIGHT_DTYPE)
        if self._weighted:
            row = dict(zip(base_cols.tolist(),
                           self._base.neighbor_weights(vertex).tolist()))
        else:
            row = dict.fromkeys(base_cols.tolist(), 1.0)
        for dst, weight in delta.items():
            if weight is None:
                row.pop(dst, None)
            else:
                row[dst] = weight
        cols = np.fromiter(sorted(row), dtype=_INDEX_DTYPE, count=len(row))
        if not self._weighted:
            return cols, None
        weights = np.fromiter(
            (row[int(dst)] for dst in cols), dtype=_WEIGHT_DTYPE, count=cols.size
        )
        return cols, weights

    def _maybe_compact(self) -> None:
        if self._delta_entries > self.delta_peak:
            self.delta_peak = self._delta_entries
        if self.needs_compaction:
            self.compact()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, epoch={self._epoch}, "
            f"delta={self._delta_entries}, dirty={len(self._dirty)})"
        )
