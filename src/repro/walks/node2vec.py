"""Node2Vec — second-order biased walks.

Node2Vec (Grover & Leskovec, KDD'16) biases each hop by where the walk
just came from: return bias ``1/p``, in-neighborhood bias ``1``, explore
bias ``1/q``.  The paper evaluates both sampling strategies from Table I:

* **rejection sampling** for unweighted graphs (64-bit RP entry; used in
  the gSampler comparison, Figure 9d);
* **weighted reservoir sampling** for weighted graphs (128-bit RP entry;
  used in the LightRW comparison, Figure 8c).

Because the bias depends on the previous vertex, decomposed tasks carry
*two* dependent vertices — the higher-order case the paper's task tuple
explicitly supports ("or two vertices for higher-order walks like
Node2Vec", Section V-A).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WalkConfigError
from repro.graph.csr import CSRGraph
from repro.sampling.base import Sampler
from repro.sampling.rejection import RejectionSampler
from repro.sampling.reservoir import ReservoirSampler
from repro.walks.base import DEFAULT_MAX_LENGTH, WalkSpec

#: The paper's Node2Vec parameters (Section VIII-A4).
PAPER_P = 2.0
PAPER_Q = 0.5


class Node2VecSpec(WalkSpec):
    """Node2Vec specification.

    Parameters
    ----------
    p, q:
        Return and in-out parameters (paper default ``p=2, q=0.5``).
    strategy:
        ``"rejection"`` (unweighted graphs) or ``"reservoir"`` (weighted).
    """

    name = "Node2Vec"
    needs_prev_vertex = True

    def __init__(
        self,
        p: float = PAPER_P,
        q: float = PAPER_Q,
        strategy: str = "rejection",
        max_length: int = DEFAULT_MAX_LENGTH,
    ) -> None:
        super().__init__(max_length=max_length)
        if p <= 0 or q <= 0:
            raise WalkConfigError(f"p and q must be positive, got p={p}, q={q}")
        if strategy not in ("rejection", "reservoir"):
            raise WalkConfigError(
                f"strategy must be 'rejection' or 'reservoir', got {strategy!r}"
            )
        self.p = p
        self.q = q
        self.strategy = strategy

    def make_sampler(self) -> Sampler:
        if self.strategy == "rejection":
            return RejectionSampler(p=self.p, q=self.q)
        return ReservoirSampler(p=self.p, q=self.q)


def exact_step_distribution(
    graph: CSRGraph, current: int, previous: int | None, p: float, q: float
) -> np.ndarray:
    """The exact Node2Vec transition distribution for one hop.

    Ground truth for the statistical tests: both rejection and reservoir
    sampling must converge to this distribution.  Weights (if any)
    multiply the structural bias, matching both sampler implementations.
    """
    neighbors = graph.neighbors(current)
    if neighbors.size == 0:
        raise WalkConfigError(f"vertex {current} has no out-neighbors")
    weights = graph.neighbor_weights(current).astype(np.float64).copy()
    if previous is not None:
        for i, candidate in enumerate(neighbors):
            candidate = int(candidate)
            if candidate == previous:
                weights[i] *= 1.0 / p
            elif graph.has_edge(previous, candidate):
                weights[i] *= 1.0
            else:
                weights[i] *= 1.0 / q
    return weights / weights.sum()
