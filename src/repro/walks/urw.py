"""Uniform random walk (URW) — unbiased first-order walks.

Each hop picks an out-neighbor uniformly at random; the walk ends at the
maximum length or on reaching a dangling vertex.
"""

from __future__ import annotations

from repro.sampling.uniform import UniformSampler
from repro.walks.base import DEFAULT_MAX_LENGTH, WalkSpec


class URWSpec(WalkSpec):
    """Uniform random walk specification."""

    name = "URW"
    needs_prev_vertex = False

    def __init__(self, max_length: int = DEFAULT_MAX_LENGTH) -> None:
        super().__init__(max_length=max_length)

    def make_sampler(self) -> UniformSampler:
        return UniformSampler()
