"""Walk algorithms: URW, PPR, DeepWalk, Node2Vec, MetaPath + reference engine."""

from repro.walks.base import (
    DEFAULT_MAX_LENGTH,
    Query,
    WalkResults,
    WalkSpec,
    make_queries,
)
from repro.walks.batch import run_walks_batch
from repro.walks.deepwalk import DeepWalkSpec, cooccurrence_counts, skip_gram_pairs
from repro.walks.metapath import MetaPathSpec
from repro.walks.node2vec import (
    PAPER_P,
    PAPER_Q,
    Node2VecSpec,
    exact_step_distribution,
)
from repro.walks.ppr import PPRSpec, estimate_ppr
from repro.walks.reference import EngineStats, expected_visit_distribution, run_walks
from repro.walks.urw import URWSpec

__all__ = [
    "DEFAULT_MAX_LENGTH",
    "DeepWalkSpec",
    "EngineStats",
    "MetaPathSpec",
    "Node2VecSpec",
    "PAPER_P",
    "PAPER_Q",
    "PPRSpec",
    "Query",
    "URWSpec",
    "WalkResults",
    "WalkSpec",
    "cooccurrence_counts",
    "estimate_ppr",
    "exact_step_distribution",
    "expected_visit_distribution",
    "make_queries",
    "run_walks",
    "run_walks_batch",
    "skip_gram_pairs",
]
