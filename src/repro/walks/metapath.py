"""MetaPath random walks over heterogeneous (typed) graphs.

metapath2vec (Dong et al., KDD'17) constrains each hop to follow a
repeating pattern of edge types (e.g. Author-Paper-Venue-Paper-Author).
If the current vertex has *no* admissible out-edge the walk terminates
early — the paper highlights this as the irregularity that gives
RidgeWalker its larger win over LightRW on MetaPath (Figure 8d: 1.3-1.7x
vs 1.1-1.5x for Node2Vec).

Sampling among admissible neighbors is weighted reservoir sampling
(Table I: 128-bit RP entry), the single-pass scheme that composes the
type filter and edge weights without preprocessing.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import WalkConfigError
from repro.sampling.reservoir import ReservoirSampler
from repro.walks.base import DEFAULT_MAX_LENGTH, WalkSpec


class MetaPathSpec(WalkSpec):
    """MetaPath walk following a cyclic edge-type pattern.

    Parameters
    ----------
    pattern:
        Sequence of edge-type labels; hop ``i`` must traverse an edge of
        type ``pattern[i % len(pattern)]``.
    """

    name = "MetaPath"
    needs_prev_vertex = False

    def __init__(
        self,
        pattern: Sequence[int],
        max_length: int = DEFAULT_MAX_LENGTH,
    ) -> None:
        super().__init__(max_length=max_length)
        if not pattern:
            raise WalkConfigError("pattern must contain at least one edge type")
        if any(t < 0 for t in pattern):
            raise WalkConfigError(f"edge types must be non-negative, got {list(pattern)}")
        self.pattern = tuple(int(t) for t in pattern)

    def make_sampler(self) -> ReservoirSampler:
        return ReservoirSampler()

    def admissible_type(self, step: int) -> int:
        """Edge type required at hop ``step`` (0-based)."""
        return self.pattern[step % len(self.pattern)]
