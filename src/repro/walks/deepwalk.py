"""DeepWalk — fixed-length walks for embedding corpora.

DeepWalk (Perozzi et al., KDD'14) generates fixed-length truncated walks
whose windows feed a skip-gram model.  On weighted graphs each hop draws
a neighbor proportionally to edge weight via **alias sampling** (Table I:
256-bit RP entry carrying the alias-table pointer), on unweighted graphs
the alias table degenerates to uniform.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from repro.sampling.alias_sampler import AliasSampler
from repro.walks.base import DEFAULT_MAX_LENGTH, WalkSpec, WalkResults


class DeepWalkSpec(WalkSpec):
    """DeepWalk specification (alias sampling, fixed length)."""

    name = "DeepWalk"
    needs_prev_vertex = False

    def __init__(self, max_length: int = DEFAULT_MAX_LENGTH) -> None:
        super().__init__(max_length=max_length)

    def make_sampler(self) -> AliasSampler:
        return AliasSampler()


def skip_gram_pairs(results: WalkResults, window: int = 5) -> Iterator[tuple[int, int]]:
    """Yield (center, context) pairs from walk paths, skip-gram style.

    This is the downstream consumer DeepWalk exists for; the embedding
    example uses it to build a co-occurrence model without needing a
    neural-network dependency.
    """
    for path in results.paths:
        n = path.size
        for i in range(n):
            lo = max(0, i - window)
            hi = min(n, i + window + 1)
            for j in range(lo, hi):
                if i != j:
                    yield int(path[i]), int(path[j])


def cooccurrence_counts(results: WalkResults, window: int = 5) -> Counter:
    """Counter of (center, context) pair frequencies."""
    counts: Counter = Counter()
    for pair in skip_gram_pairs(results, window=window):
        counts[pair] += 1
    return counts
