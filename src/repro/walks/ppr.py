"""Personalized PageRank (PPR) walks.

Monte-Carlo PPR: walks start at the personalization vertex, move
uniformly, and terminate after each hop with probability ``alpha`` (the
teleport probability — a host-programmable AXI4-Lite register in the real
accelerator, Section VII).  Walk lengths are therefore geometric — the
probabilistic-termination imbalance in Figure 1b that static schedules
can't absorb.

The visit frequencies of terminated walks estimate the PPR vector, which
:func:`estimate_ppr` exposes for the example applications.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WalkConfigError
from repro.sampling.uniform import UniformSampler
from repro.walks.base import DEFAULT_MAX_LENGTH, WalkSpec, WalkResults


class PPRSpec(WalkSpec):
    """PPR walk with per-step termination probability ``alpha``."""

    name = "PPR"
    needs_prev_vertex = False

    def __init__(self, alpha: float = 0.15, max_length: int = DEFAULT_MAX_LENGTH) -> None:
        super().__init__(max_length=max_length)
        if not 0.0 < alpha < 1.0:
            raise WalkConfigError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha

    def make_sampler(self) -> UniformSampler:
        return UniformSampler()

    def termination_probability(self, step: int) -> float:
        return self.alpha

    def expected_length(self) -> float:
        """Mean walk length implied by geometric termination (capped)."""
        # E[min(Geom(alpha), L)] = (1 - (1-alpha)**L) / alpha
        return (1.0 - (1.0 - self.alpha) ** self.max_length) / self.alpha


def estimate_ppr(results: WalkResults, num_vertices: int) -> np.ndarray:
    """Monte-Carlo PPR estimate from walk endpoints.

    The standard estimator: the PPR score of ``v`` is the fraction of
    walks that *terminate* at ``v``.
    """
    counts = np.zeros(num_vertices, dtype=np.float64)
    for path in results.paths:
        counts[int(path[-1])] += 1.0
    total = counts.sum()
    if total == 0:
        raise WalkConfigError("cannot estimate PPR from zero completed walks")
    return counts / total
