"""Pure-software reference walk engine.

Implements Algorithm II.1 of the paper directly: row access, sampling,
column access, termination check — one query at a time, no hardware
modelling.  Every accelerator model in this repository (RidgeWalker's
cycle simulator and all baselines) must produce walk *statistics*
indistinguishable from this engine; the integration test suite enforces
that with chi-square comparisons.

The engine is also the correctness oracle for downstream applications
(PPR estimation, DeepWalk corpora) in ``examples/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.base import (
    NumpyRandomSource,
    StepContext,
    derive_seed,
    normalize_seed,
)
from repro.walks.base import Query, WalkResults, WalkSpec


@dataclass
class EngineStats:
    """Cost counters accumulated while running the reference engine."""

    total_hops: int = 0
    sampling_proposals: int = 0
    neighbor_reads: int = 0
    early_terminations: int = 0
    dangling_terminations: int = 0
    probabilistic_terminations: int = 0
    length_terminations: int = 0
    per_query_hops: list[int] = field(default_factory=list)

    def imbalance_ratio(self) -> float:
        """max/mean of per-query hop counts (1.0 = perfectly balanced)."""
        hops = np.asarray(self.per_query_hops, dtype=np.float64)
        if hops.size == 0 or hops.mean() == 0:
            return 1.0
        return float(hops.max() / hops.mean())


def run_walks(
    graph: CSRGraph,
    spec: WalkSpec,
    queries: Sequence[Query],
    seed: int = 0,
    stats: EngineStats | None = None,
    sampler: str = "default",
) -> WalkResults:
    """Execute ``queries`` under ``spec`` and return their paths.

    Deterministic in ``seed``; each query gets an independent substream so
    results do not depend on query order.  Pass an :class:`EngineStats`
    to collect cost counters (used by the baseline performance models).
    ``sampler="auto"`` wraps the spec's sampler in the per-row hybrid
    dispatcher (:mod:`repro.sampling.hybrid`) — same per-hop
    distributions, so the engine stays the statistical oracle either way.
    """
    from repro.sampling.hybrid import make_walk_sampler

    sampler = make_walk_sampler(spec.make_sampler(), sampler)
    sampler.prepare(graph)
    results = WalkResults()
    seed = normalize_seed(seed)
    for query in queries:
        # SeedSequence((seed, query_id)) gives provably well-separated
        # substreams; the previous xor-mix derivation produced colliding
        # streams across (seed, query_id) pairs (e.g. (0, 1) and
        # (salt, 0) were identical).
        rng = NumpyRandomSource(
            np.random.default_rng(np.random.SeedSequence((seed, query.query_id)))
        )
        path = [query.start_vertex]
        current = query.start_vertex
        previous: int | None = None
        hops = 0
        for step in range(spec.max_length):
            if graph.degree(current) == 0:
                if stats is not None:
                    stats.dangling_terminations += 1
                break
            context = StepContext(
                vertex=current,
                prev_vertex=previous if spec.needs_prev_vertex else None,
                admissible_type=spec.admissible_type(step),
            )
            outcome = sampler.sample(graph, context, rng)
            if stats is not None:
                stats.sampling_proposals += outcome.proposals
                stats.neighbor_reads += outcome.neighbor_reads
            if outcome.terminated:
                if stats is not None:
                    stats.early_terminations += 1
                break
            next_vertex = int(graph.neighbors(current)[outcome.index])
            path.append(next_vertex)
            previous = current
            current = next_vertex
            hops += 1
            if spec.terminates_probabilistically(step, rng):
                if stats is not None:
                    stats.probabilistic_terminations += 1
                break
        else:
            if stats is not None:
                stats.length_terminations += 1
        results.add_path(path)
        if stats is not None:
            stats.total_hops += hops
            stats.per_query_hops.append(hops)
    return results


def expected_visit_distribution(
    graph: CSRGraph, spec: WalkSpec, queries: Sequence[Query], num_trials: int = 1, seed: int = 0
) -> np.ndarray:
    """Empirical visit distribution from repeated reference runs.

    Convenience wrapper for statistical tests that want a high-sample
    oracle without hand-rolling the loop.
    """
    counts = np.zeros(graph.num_vertices, dtype=np.float64)
    for trial in range(num_trials):
        # Per-trial child seeds via spawn keys (RW102): the historical
        # ``seed + trial * 7919`` stride collided across (seed, trial)
        # pairs, silently correlating oracle trials.
        results = run_walks(graph, spec, queries, seed=derive_seed(seed, trial))
        counts += results.visit_counts(graph.num_vertices)
    total = counts.sum()
    return counts / total if total else counts
