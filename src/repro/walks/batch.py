"""NumPy-vectorized batch walk engine.

Advances an entire frontier of walkers one superstep at a time instead of
one query and one hop at a time — the step-centric batching of ThunderRW
and the software analogue of RidgeWalker's pipelining.  The engine keeps
arrays of ``(current, previous, alive, hops)`` for all queries; each
superstep terminates dangling walkers, asks a vectorized sampling kernel
for the whole frontier's next-hop choices, moves the survivors, and
applies probabilistic termination (PPR's teleport) in one masked draw.

Drop-in alternative to :func:`repro.walks.reference.run_walks`: same
``WalkSpec``/``Query``/``WalkResults`` API, same per-query RNG substream
keying (``SeedSequence((seed, query_id))``), same :class:`EngineStats`
counter semantics.  Statistical equivalence against the reference engine
is enforced by chi-square tests; throughput is benchmarked by
``benchmarks/bench_batch_engine.py``.

The module exposes two layers: :func:`run_walks_batch` is the
``Query``-object API, and :func:`run_walks_batch_arrays` is the
array-level core that the sharded parallel engine
(:mod:`repro.parallel`) runs inside each worker process against a
pre-prepared kernel.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphError, WalkConfigError
from repro.graph.csr import CSRGraph
from repro.obs.trace import active as _active_tracer
from repro.sampling.hybrid import make_walk_kernel, validate_sampler_mode
from repro.sampling.vectorized import QueryStreams, VectorizedKernel
from repro.walks.base import Query, WalkResults, WalkSpec
from repro.walks.reference import EngineStats

#: Termination-cause codes recorded per walker (0 = ran to max length).
_RAN_FULL_LENGTH = 0
_DANGLING = 1
_EARLY = 2
_PROBABILISTIC = 3


def check_batch_spec(spec: WalkSpec) -> None:
    """Reject specs the vectorized engines cannot run faithfully.

    The batch engine applies probabilistic termination as one vectorized
    draw per superstep, so it never calls the scalar
    ``terminates_probabilistically()`` hook; any spec overriding that hook
    may carry a termination rule ``termination_probability()`` does not
    express, and running it here would silently drop it.  The parallel
    engine shares this contract and calls the same check before sharding.
    """
    if type(spec).terminates_probabilistically is not WalkSpec.terminates_probabilistically:
        raise WalkConfigError(
            f"{type(spec).__name__} overrides terminates_probabilistically(), which the "
            "batch engine never consults — express the rule via "
            "termination_probability() or use the reference engine"
        )


def run_walks_batch_arrays(
    graph: CSRGraph,
    spec: WalkSpec,
    kernel: VectorizedKernel,
    start_vertices: np.ndarray,
    query_ids: np.ndarray,
    seed: int = 0,
    stats: EngineStats | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Superstep core: run walks for aligned start/id arrays.

    ``kernel`` must already be prepared for ``graph`` (the caller owns
    preparation so a worker pool can prepare once and run many shards).
    Returns ``(paths, hops)`` where ``paths`` is a dense
    ``(num_queries, width)`` int64 matrix whose row ``k`` holds the walk
    of ``query_ids[k]`` in ``paths[k, :hops[k] + 1]``.  All
    :class:`EngineStats` counters — including ``per_query_hops``, in the
    order of the given arrays — are accumulated into ``stats``.
    """
    num_queries = int(start_vertices.size)
    current = np.array(start_vertices, dtype=np.int64)
    if current.size and (current.min() < 0 or current.max() >= graph.num_vertices):
        bad = int(current[(current < 0) | (current >= graph.num_vertices)][0])
        raise GraphError(
            f"vertex {bad} out of range for graph with {graph.num_vertices} vertices"
        )
    streams = QueryStreams(seed, query_ids)

    degrees = graph.degrees()
    previous = np.full(num_queries, -1, dtype=np.int64)
    alive = np.ones(num_queries, dtype=bool)
    hops = np.zeros(num_queries, dtype=np.int64)
    cause = np.full(num_queries, _RAN_FULL_LENGTH, dtype=np.uint8)
    # The path buffer grows by doubling as walks lengthen, so peak memory
    # tracks the longest *observed* walk, not max_length — geometric
    # terminators like PPR cap walks at hundreds of hops but rarely pass
    # a dozen.
    capacity = min(spec.max_length, 16)
    paths = np.empty((num_queries, capacity + 1), dtype=np.int64)
    paths[:, 0] = current

    # Hoisted once per run: with tracing disabled (the default) the
    # per-superstep cost is one local ``is not None`` branch — the
    # overhead contract benchmarks/bench_obs_overhead.py enforces.
    tracer = _active_tracer()

    for step in range(spec.max_length):
        frontier = np.nonzero(alive)[0]
        if frontier.size == 0:
            break
        if tracer is not None:
            _span_start = tracer.begin()
            _span_width = int(frontier.size)

        dangling = degrees[current[frontier]] == 0
        if dangling.any():
            stuck = frontier[dangling]
            alive[stuck] = False
            cause[stuck] = _DANGLING
            frontier = frontier[~dangling]
            if frontier.size == 0:
                if tracer is not None:
                    tracer.end(_span_start, "batch.superstep", step=step,
                               frontier=_span_width, survivors=0)
                break

        prev_arg = previous[frontier] if spec.needs_prev_vertex else np.full(
            frontier.size, -1, dtype=np.int64
        )
        batch = kernel.sample(
            graph,
            current[frontier],
            prev_arg,
            spec.admissible_type(step),
            streams,
            frontier,
        )
        if stats is not None:
            stats.sampling_proposals += batch.proposals
            stats.neighbor_reads += batch.neighbor_reads

        terminated = batch.choice < 0
        if terminated.any():
            ended = frontier[terminated]
            alive[ended] = False
            cause[ended] = _EARLY
            frontier = frontier[~terminated]
            if frontier.size == 0:
                if tracer is not None:
                    tracer.end(_span_start, "batch.superstep", step=step,
                               frontier=_span_width, survivors=0)
                continue
        choice = batch.choice[batch.choice >= 0]

        next_vertex = graph.col[graph.row_ptr[current[frontier]] + choice]
        previous[frontier] = current[frontier]
        current[frontier] = next_vertex
        hops[frontier] += 1
        if step + 1 > capacity:
            capacity = min(spec.max_length, capacity * 2)
            grown = np.empty((num_queries, capacity + 1), dtype=np.int64)
            grown[:, : paths.shape[1]] = paths
            paths = grown
        paths[frontier, step + 1] = next_vertex

        teleport = spec.termination_probability(step)
        if teleport > 0.0:
            stop = streams.uniforms(frontier) < teleport
            if stop.any():
                ended = frontier[stop]
                alive[ended] = False
                cause[ended] = _PROBABILISTIC
        if tracer is not None:
            tracer.end(_span_start, "batch.superstep", step=step,
                       frontier=_span_width, survivors=int(frontier.size))

    if stats is not None:
        stats.total_hops += int(hops.sum())
        stats.per_query_hops.extend(int(h) for h in hops)
        stats.dangling_terminations += int(np.count_nonzero(cause == _DANGLING))
        stats.early_terminations += int(np.count_nonzero(cause == _EARLY))
        stats.probabilistic_terminations += int(np.count_nonzero(cause == _PROBABILISTIC))
        stats.length_terminations += int(np.count_nonzero(alive))
    return paths, hops


def run_walks_batch(
    graph: CSRGraph,
    spec: WalkSpec,
    queries: Sequence[Query],
    seed: int = 0,
    stats: EngineStats | None = None,
    kernel: VectorizedKernel | None = None,
    sampler: str = "default",
) -> WalkResults:
    """Execute ``queries`` under ``spec`` with frontier supersteps.

    Deterministic in ``seed`` and independent of query order, like the
    reference engine; per-query paths are *statistically* equivalent to
    the reference engine's, not bit-identical (the engines consume their
    substreams in different patterns).

    ``kernel``, when given, must already be prepared for ``graph``;
    repeated callers (the serving layer's prepared batch engine) pass it
    to amortize alias-table/edge-key construction across batches.
    ``sampler`` selects the kernel family when no kernel is given:
    ``"default"`` runs the spec's own single-strategy kernel, ``"auto"``
    the cost-model-driven hybrid (:mod:`repro.sampling.hybrid`).
    """
    check_batch_spec(spec)
    validate_sampler_mode(sampler)
    results = WalkResults()
    num_queries = len(queries)
    if num_queries == 0:
        return results

    if kernel is None:
        kernel = make_walk_kernel(spec.make_sampler(), sampler)
        kernel.prepare(graph)
    query_ids = np.fromiter(
        (query.query_id for query in queries), dtype=np.int64, count=num_queries
    )
    starts = np.fromiter(
        (query.start_vertex for query in queries), dtype=np.int64, count=num_queries
    )
    paths, hops = run_walks_batch_arrays(
        graph, spec, kernel, starts, query_ids, seed=seed, stats=stats
    )
    results.extend_from_matrix(paths, hops)
    return results
