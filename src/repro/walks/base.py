"""Walk specifications, queries and results.

A :class:`WalkSpec` bundles everything that distinguishes one GRW
algorithm from another — which sampler it uses, how walks terminate, and
what per-step state a task must carry (Table I).  The same spec object
drives the pure-software reference engine, every baseline model, and the
cycle-level RidgeWalker simulator, which is what makes cross-checking
their statistics meaningful.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import WalkConfigError
from repro.graph.csr import CSRGraph
from repro.sampling.base import RandomSource, Sampler

#: The paper's query length for all throughput experiments (Section VIII-A4).
DEFAULT_MAX_LENGTH = 80


@dataclass(frozen=True)
class Query:
    """One random-walk query: a start vertex plus a tracking id."""

    query_id: int
    start_vertex: int

    def __post_init__(self) -> None:
        if self.query_id < 0:
            raise WalkConfigError(f"query_id must be non-negative, got {self.query_id}")
        if self.start_vertex < 0:
            raise WalkConfigError(
                f"start_vertex must be non-negative, got {self.start_vertex}"
            )


class WalkSpec(ABC):
    """Algorithm-specific behaviour of a GRW.

    Subclasses define the sampler, the termination rule, and how much
    walker state a decomposed task needs (``v_last`` only for first-order
    walks; ``(v_last, v_prev)`` for second-order walks like Node2Vec —
    the paper's task tuple notes exactly this distinction).
    """

    #: Display name used in benchmark tables.
    name: str = "walk"

    #: Whether tasks must carry the previous vertex (second-order walks).
    needs_prev_vertex: bool = False

    def __init__(self, max_length: int = DEFAULT_MAX_LENGTH) -> None:
        self.max_length = max_length

    @property
    def max_length(self) -> int:
        """Maximum number of hops per query.

        A validating property rather than a bare attribute: several
        entry points (CLI, benchmarks) re-assign it after construction
        to apply a ``--length`` flag, and a zero or negative length must
        fail as a config error there too, not as a numpy shape error
        deep inside an engine.
        """
        return self._max_length

    @max_length.setter
    def max_length(self, value: int) -> None:
        if value < 1:
            raise WalkConfigError(f"max_length must be >= 1, got {value}")
        self._max_length = int(value)

    @abstractmethod
    def make_sampler(self) -> Sampler:
        """Create a fresh sampler configured for this algorithm."""

    def admissible_type(self, step: int) -> int | None:
        """Edge-type constraint for hop ``step`` (MetaPath); ``None`` = any."""
        return None

    def termination_probability(self, step: int) -> float:
        """Probability the walk ends after hop ``step`` by algorithmic
        choice (PPR's teleport).  0.0 — never — by default.

        Declaring the probability (rather than only the draw) lets the
        batch engine apply termination to a whole frontier with one
        vectorized draw.
        """
        return 0.0

    def terminates_probabilistically(
        self, step: int, random_source: RandomSource
    ) -> bool:
        """Whether the walk ends after ``step`` by algorithmic choice;
        draws one uniform only when :meth:`termination_probability` is
        non-zero, preserving RNG stream alignment for non-terminating
        specs."""
        probability = self.termination_probability(step)
        return probability > 0.0 and random_source.uniform() < probability

    @property
    def rp_entry_bits(self) -> int:
        """Row-pointer entry width the accelerator configures (Table I)."""
        return self.make_sampler().rp_entry_bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_length={self.max_length})"


@dataclass
class WalkResults:
    """Paths produced by a batch of queries, plus aggregate counters.

    ``paths[i]`` is the vertex sequence of query ``i`` **including** the
    start vertex.  ``total_steps`` counts traversed hops (visited vertices
    beyond the start), the quantity the paper's MStep/s metric divides by
    time.
    """

    paths: list[np.ndarray] = field(default_factory=list)
    total_steps: int = 0

    def add_path(self, path: Sequence[int]) -> None:
        """Record one finished query path."""
        array = np.asarray(path, dtype=np.int64)
        self.paths.append(array)
        self.total_steps += max(0, array.size - 1)

    def extend_from_matrix(self, paths: np.ndarray, hops: np.ndarray) -> None:
        """Bulk-append one path per matrix row; row ``i`` contributes
        ``paths[i, :hops[i] + 1]``.

        The batch and parallel engines finish with a dense
        ``(num_queries, width)`` path buffer; appending row-by-row through
        :meth:`add_path` costs a Python round-trip per query.  This gathers
        every row's valid prefix into one compact contiguous buffer with a
        single masked fancy-index and splits it into per-query views, so
        the per-row cost is one lightweight slice.  The views share the
        compact buffer — exactly ``sum(hops + 1)`` entries, no superstep
        padding — so holding any path pins only real path data.
        """
        flat, lengths = compact_path_matrix(paths, hops)
        if lengths.size == 0:
            return
        self.paths.extend(split_path_buffer(flat, lengths))
        self.total_steps += int(flat.size - lengths.size)

    @property
    def num_queries(self) -> int:
        """Number of completed queries."""
        return len(self.paths)

    def lengths(self) -> np.ndarray:
        """Hop count of every query (excludes the start vertex)."""
        return np.asarray([max(0, p.size - 1) for p in self.paths], dtype=np.int64)

    def visit_counts(self, num_vertices: int, include_start: bool = True) -> np.ndarray:
        """Histogram of vertex visits across all paths.

        The statistical oracle for comparing engines: two correct engines
        running the same spec must produce visit histograms that agree up
        to sampling noise.
        """
        counts = np.zeros(num_vertices, dtype=np.int64)
        for path in self.paths:
            visited = path if include_start else path[1:]
            counts += np.bincount(visited, minlength=num_vertices)
        return counts

    def transition_counts(self, num_vertices: int) -> np.ndarray:
        """Dense matrix of observed ``src -> dst`` hop counts (small graphs
        only; used by distribution tests)."""
        counts = np.zeros((num_vertices, num_vertices), dtype=np.int64)
        for path in self.paths:
            for a, b in zip(path[:-1], path[1:]):
                counts[int(a), int(b)] += 1
        return counts

    def path_of(self, query_id: int) -> np.ndarray:
        """Path of the query recorded at position ``query_id``."""
        return self.paths[query_id]

    def subset(self, positions: Sequence[int]) -> "WalkResults":
        """New :class:`WalkResults` holding the selected positions' paths.

        The serving layer executes a micro-batch as one engine run and
        resolves each request's future with its own slice.  Paths are
        *copied*, deliberately: batch-engine paths are views into one
        compact buffer covering the whole micro-batch, and a slice that
        shared them would pin every other request's memory for as long
        as one caller kept their response alive.  ``total_steps`` is
        recomputed for the subset so per-request hop accounting stays
        exact.
        """
        result = WalkResults()
        for position in positions:
            path = self.paths[position]
            result.paths.append(path.copy() if path.base is not None else path)
            result.total_steps += max(0, path.size - 1)
        return result


def compact_path_matrix(paths: np.ndarray, hops: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gather each row's valid prefix into one contiguous buffer.

    Returns ``(flat, lengths)`` where ``flat`` is the concatenation of
    ``paths[i, :hops[i] + 1]`` for every row, in row order.  This is the
    wire format the parallel engine's workers ship back to the parent —
    about 30% smaller than the padded matrix on typical walk-length
    distributions, and exactly what :func:`split_path_buffer` consumes.
    """
    paths = np.asarray(paths)
    hops = np.asarray(hops, dtype=np.int64)
    if paths.ndim != 2 or hops.ndim != 1 or paths.shape[0] != hops.size:
        raise WalkConfigError(
            f"paths {paths.shape} and hops {hops.shape} must be a matrix "
            "and an aligned vector"
        )
    if hops.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if hops.min() < 0 or hops.max() >= paths.shape[1]:
        raise WalkConfigError(
            f"hops must lie in [0, {paths.shape[1] - 1}] for a "
            f"{paths.shape[1]}-wide path matrix"
        )
    lengths = hops + 1
    keep = np.arange(paths.shape[1]) < lengths[:, None]
    return np.ascontiguousarray(paths[keep], dtype=np.int64), lengths


def split_path_buffer(flat: np.ndarray, lengths: np.ndarray) -> list[np.ndarray]:
    """Split a compact path buffer into one view per query (row order)."""
    return np.split(flat, np.cumsum(lengths)[:-1])


def make_queries(
    graph: CSRGraph,
    count: int,
    seed: int = 0,
    start_vertices: Sequence[int] | None = None,
    require_outgoing: bool = True,
) -> list[Query]:
    """Build a query batch with random (or given) start vertices.

    ``require_outgoing`` skips dangling start vertices, matching the
    paper's setup where every query performs at least one hop attempt.
    """
    if count < 1:
        raise WalkConfigError(f"count must be >= 1, got {count}")
    if start_vertices is not None:
        if len(start_vertices) != count:
            raise WalkConfigError(
                f"start_vertices has {len(start_vertices)} entries, expected {count}"
            )
        return [Query(i, int(v)) for i, v in enumerate(start_vertices)]
    rng = np.random.default_rng(seed)
    if require_outgoing:
        candidates = np.nonzero(graph.degrees() > 0)[0]
        if candidates.size == 0:
            raise WalkConfigError("graph has no vertex with outgoing edges")
    else:
        candidates = np.arange(graph.num_vertices)
    starts = rng.choice(candidates, size=count, replace=True)
    return [Query(i, int(v)) for i, v in enumerate(starts)]
