"""Fused per-walker walk kernels (nopython-compatible).

One compiled loop runs a walker's *entire* walk — CSR row slice, strategy
dispatch, move, teleport check — with no superstep barrier, which is the
RidgeWalker pipelining argument applied to a CPU backend: the hop loop
hides the next row fetch behind the current draw instead of
materializing frontier-wide arrays per step.

Bit-identity contract
---------------------
Every draw reproduces :class:`repro.sampling.vectorized.QueryStreams`
exactly: per-query uint64 state seeded from ``SeedSequence((seed,
query_id))``, advanced by the splitmix64 golden-ratio gamma, finalized
with the splitmix64 mixer, mapped to [0, 1) via the top 53 bits.  The
per-strategy draw *patterns* (how many state bumps per hop, in what
order) mirror the batch kernels one-to-one, so a walker's path is
bit-identical whether it ran here or on the frontier engine.  The
chi-square suites then come for free: same paths, same statistics.

Two traps this file works around, so edits must preserve them:

* every RNG constant and shift count is a module-level ``np.uint64`` —
  mixing a Python int into uint64 arithmetic makes numba promote the
  whole expression to float64 and silently breaks the stream;
* ``u ** e`` mirrors numpy's ``npy_pow`` shortcut branches (exponents
  2.0 / 0.5 / 1.0 / 0.0 / -1.0) because numba lowers ``**`` straight to
  libm ``pow`` — without the branches reservoir race keys can drift by
  one ulp on libms that are not correctly rounded.

The module imports (and its kernels run, interpreted) without numba —
see :mod:`repro.walks.jit.compat`.
"""

from __future__ import annotations

import numpy as np

from repro.walks.jit.compat import njit

# splitmix64 stream constants — must match repro.sampling.vectorized.
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_ELEMENT_GAMMA = np.uint64(0xD1B54A32D192ED03)
_TO_UNIT = 1.0 / (1 << 53)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)
_S11 = np.uint64(11)

# Strategy codes — must match repro.sampling.hybrid.
CODE_UNIFORM = 0
CODE_ALIAS = 1
CODE_ITS = 2
CODE_REJECTION = 3
CODE_RESERVOIR = 4
CODE_ONE = 5

#: Which batch kernel CODE_ITS stands for: the prepared flat-CDF
#: ``ITSKernel`` under first-order bases, the bias-adjusted
#: ``BiasedScanKernel`` under second-order families (structural-only
#: for rejection, weighted for reservoir).
FAMILY_FIRST = 0
FAMILY_REJECTION = 1
FAMILY_RESERVOIR = 2

# Termination causes — must match repro.walks.batch.
CAUSE_LENGTH = 0
CAUSE_DANGLING = 1
CAUSE_EARLY = 2
CAUSE_PROBABILISTIC = 3

#: ``counters`` slots filled by :func:`walk_kernel`.
N_COUNTERS = 3
IDX_PROPOSALS = 0
IDX_READS = 1
IDX_REJECTION_OVERFLOW = 2

_MAX_REJECTION_ROUNDS = 10_000


@njit(cache=True)
def _mix64(z):
    """splitmix64 finalizer over one uint64 (wrapping arithmetic)."""
    z = (z ^ (z >> _S30)) * _MIX_1
    z = (z ^ (z >> _S27)) * _MIX_2
    return z ^ (z >> _S31)


@njit(cache=True)
def _to_unit(bits):
    """Map a uint64 to a float64 uniform in [0, 1) (53 usable bits)."""
    return np.float64(bits >> _S11) * _TO_UNIT


@njit(cache=True)
def _next_uniform(state):
    """Advance one stream; return ``(new_state, uniform)``."""
    state = state + _GAMMA
    return state, _to_unit(_mix64(state))


@njit(cache=True)
def _randint(u, bound):
    """``QueryStreams.randints`` for one draw: truncate, clamp to bound-1."""
    draw = np.int64(u * np.float64(bound))
    if draw > bound - 1:
        draw = bound - 1
    return draw


@njit(cache=True)
def _edge_exists(edge_keys, num_vertices, src, dst):
    """Binary-search twin of ``vectorized.edges_exist`` for one edge."""
    size = edge_keys.size
    if size == 0:
        return False
    key = src * num_vertices + dst
    lo = 0
    hi = size
    while lo < hi:
        mid = (lo + hi) // 2
        if edge_keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    if lo >= size:
        lo = size - 1
    return edge_keys[lo] == key


@njit(cache=True)
def _race_key(u, e):
    """``u ** e`` through numpy's ``npy_pow`` shortcut branches.

    numpy's power ufunc special-cases these exponents before calling
    libm; mirroring the branches keeps reservoir race keys bit-identical
    to the vectorized kernel under any libm.
    """
    if e == 2.0:
        return u * u
    if e == 0.5:
        return np.sqrt(u)
    if e == 1.0:
        return u
    if e == 0.0:
        return 1.0
    if e == -1.0:
        return 1.0 / u
    return u ** e


@njit(cache=True)
def walk_kernel(
    row_ptr,
    col,
    weights,
    has_weights,
    edge_types,
    num_vertices,
    edge_keys,
    codes,
    family,
    alias_prob,
    alias_index,
    its_cdf,
    its_row_totals,
    return_bias,
    explore_bias,
    max_bias,
    p_inv,
    q_inv,
    second_order,
    needs_prev,
    admissible,
    term_prob,
    max_length,
    starts,
    states,
    paths,
    hops,
    cause,
    counters,
):
    """Run every walker's full walk; fill ``paths``/``hops``/``cause``.

    ``codes`` is the per-vertex strategy map (one column, already
    resolved for the base sampler); ``family`` disambiguates what
    CODE_ITS means.  ``admissible``/``term_prob`` are the spec's per-step
    hooks evaluated up front (``-1`` = no type constraint).  ``counters``
    receives [proposals, neighbor_reads, rejection_overflow].
    """
    probe_lo = min(1.0, explore_bias) / max_bias if max_bias > 0.0 else 0.0
    probe_hi = max(1.0, explore_bias) / max_bias if max_bias > 0.0 else 0.0
    proposals = np.int64(0)
    reads = np.int64(0)

    for k in range(starts.size):
        state = states[k]
        v = starts[k]
        prev = np.int64(-1)
        paths[k, 0] = v
        h = np.int64(0)
        c = CAUSE_LENGTH
        for step in range(max_length):
            lo = row_ptr[v]
            deg = row_ptr[v + 1] - lo
            if deg == 0:
                c = CAUSE_DANGLING
                break
            pp = prev if needs_prev else np.int64(-1)
            code = codes[v]
            choice = np.int64(-1)

            if code == CODE_ONE:
                # Degenerate row: probability 1, zero draws.
                choice = np.int64(0)
                proposals += 1
                reads += 1
            elif code == CODE_UNIFORM:
                state, u = _next_uniform(state)
                choice = _randint(u, deg)
                proposals += 1
                reads += 1
            elif code == CODE_ALIAS:
                state, u1 = _next_uniform(state)
                state, u2 = _next_uniform(state)
                slot = _randint(u1, deg)
                pos = lo + slot
                if u2 < alias_prob[pos]:
                    choice = slot
                else:
                    choice = alias_index[pos]
                proposals += 1
                reads += 2
            elif code == CODE_ITS and family == FAMILY_FIRST:
                # Prepared flat-CDF inverse transform (ITSKernel): count
                # of CDF entries at or below the scaled target.  The CDF
                # is nondecreasing, so entries <= target form a prefix.
                state, u = _next_uniform(state)
                target = u * its_row_totals[v]
                cnt = np.int64(0)
                for i in range(deg):
                    if its_cdf[lo + i] <= target:
                        cnt += 1
                    else:
                        break
                if cnt > deg - 1:
                    cnt = deg - 1
                choice = cnt
                proposals += 1
                reads += cnt + 1
            elif code == CODE_ITS:
                # Bias-adjusted exact scan (BiasedScanKernel).  Pass 1
                # folds the row total left-to-right (identical order to
                # the vectorized per-row cumsum); pass 2 recomputes the
                # running prefix and counts entries <= target.
                if family == FAMILY_REJECTION:
                    scan_p = return_bias
                    scan_q = explore_bias
                    scan_second = True
                    scan_weights = False
                else:
                    scan_p = p_inv
                    scan_q = q_inv
                    scan_second = second_order
                    scan_weights = True
                state, u = _next_uniform(state)
                total = 0.0
                for i in range(deg):
                    pos = lo + i
                    w = weights[pos] if scan_weights and has_weights else 1.0
                    if scan_second and pp >= 0:
                        cand = col[pos]
                        if cand == pp:
                            w = w * scan_p
                        elif not _edge_exists(edge_keys, num_vertices, pp, cand):
                            w = w * scan_q
                    total = total + w
                target = u * total
                run = 0.0
                cnt = np.int64(0)
                for i in range(deg):
                    pos = lo + i
                    w = weights[pos] if scan_weights and has_weights else 1.0
                    if scan_second and pp >= 0:
                        cand = col[pos]
                        if cand == pp:
                            w = w * scan_p
                        elif not _edge_exists(edge_keys, num_vertices, pp, cand):
                            w = w * scan_q
                    run = run + w
                    if run <= target:
                        cnt += 1
                if cnt > deg - 1:
                    cnt = deg - 1
                choice = cnt
                proposals += 1
                reads += deg
            elif code == CODE_REJECTION:
                if pp < 0:
                    # Degenerate-uniform first hop: accepted outright.
                    state, u = _next_uniform(state)
                    choice = _randint(u, deg)
                    proposals += 1
                    reads += 1
                else:
                    prev_deg = row_ptr[pp + 1] - row_ptr[pp]
                    accepted = False
                    for _ in range(_MAX_REJECTION_ROUNDS):
                        state, u1 = _next_uniform(state)
                        prop = _randint(u1, deg)
                        cand = col[lo + prop]
                        state, u = _next_uniform(state)
                        proposals += 1
                        reads += 1
                        if cand == pp:
                            bias = return_bias
                        else:
                            # Honest O(deg(prev)) probe accounting even
                            # though the lookup is a (lazily skipped)
                            # binary search.
                            reads += prev_deg
                            bias = explore_bias
                            if u >= probe_lo and u < probe_hi:
                                if _edge_exists(edge_keys, num_vertices, pp, cand):
                                    bias = 1.0
                        if u < bias / max_bias:
                            choice = prop
                            accepted = True
                            break
                    if not accepted:
                        counters[IDX_REJECTION_OVERFLOW] = 1
                        counters[IDX_PROPOSALS] = proposals
                        counters[IDX_READS] = reads
                        return
            else:  # CODE_RESERVOIR
                at = admissible[step]
                state = state + _GAMMA  # one bump; per-edge values are counter-derived
                advanced = state
                best_key = -1.0
                best_i = np.int64(-1)
                for i in range(deg):
                    pos = lo + i
                    w = weights[pos] if has_weights else 1.0
                    if second_order and pp >= 0:
                        cand = col[pos]
                        if cand == pp:
                            w = w * p_inv
                        elif not _edge_exists(edge_keys, num_vertices, pp, cand):
                            w = w * q_inv
                    ok = True
                    if at >= 0:
                        ok = edge_types[pos] == at
                    if ok and w > 0.0:
                        salt = _mix64(np.uint64(i) + _ELEMENT_GAMMA)
                        u = _to_unit(_mix64(advanced ^ salt))
                        if u == 0.0:
                            u = 5e-324
                        key = _race_key(u, 1.0 / w)
                    else:
                        key = -1.0
                    # >= keeps the LAST max — the vectorized kernel's
                    # stable lexsort picks the final occurrence.
                    if key >= best_key:
                        best_key = key
                        best_i = i
                if best_key > -0.5:
                    choice = best_i
                proposals += 1
                reads += deg

            if choice < 0:
                c = CAUSE_EARLY
                break
            nxt = col[lo + choice]
            paths[k, step + 1] = nxt
            prev = v
            v = nxt
            h += 1
            tp = term_prob[step]
            if tp > 0.0:
                state, u = _next_uniform(state)
                if u < tp:
                    c = CAUSE_PROBABILISTIC
                    break
        hops[k] = h
        cause[k] = c

    counters[IDX_PROPOSALS] = proposals
    counters[IDX_READS] = reads
