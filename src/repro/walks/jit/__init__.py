"""Numba-JIT compiled walk engine (``--engine jit``).

Fused per-walker nopython loops over the same prepared sampler state the
batch engine uses — bit-identical paths, no superstep barrier.  Degrades
to the batch engine (with one warning) when numba is absent.
"""

from repro.walks.jit.compat import NUMBA_AVAILABLE, njit
from repro.walks.jit.engine import (
    JitWalkState,
    jit_state_from_arrays,
    jit_state_from_kernel,
    reset_fallback_warning,
    run_walks_jit,
    run_walks_jit_arrays,
    run_walks_jit_prepared,
    warn_numba_fallback,
)

__all__ = [
    "NUMBA_AVAILABLE",
    "njit",
    "JitWalkState",
    "jit_state_from_arrays",
    "jit_state_from_kernel",
    "reset_fallback_warning",
    "run_walks_jit",
    "run_walks_jit_arrays",
    "run_walks_jit_prepared",
    "warn_numba_fallback",
]
