"""JIT walk engine: prepared typed-array state + fused kernel driver.

Public surface:

* :func:`run_walks_jit` — the ``Query``-object API registered as
  ``--engine jit``.  With numba installed it runs the fused per-walker
  kernel (:mod:`repro.walks.jit.kernels`); without numba it warns once
  and delegates to the batch engine, which is bit-identical by contract.
* :func:`run_walks_jit_arrays` — the array-level core (parallel workers
  and the equivalence tests call this directly; it always executes the
  kernel, compiled or interpreted).
* :func:`jit_state_from_kernel` — derives the kernel's typed-array state
  from a *prepared batch kernel*, so the jit engine consumes the exact
  same alias tables / CDF rows / edge keys / strategy codes the batch
  engine would, including those handed over by a dynamic
  ``GraphSnapshot`` through ``SamplerState.kernel_arrays``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import GraphError, SamplingError
from repro.graph.csr import CSRGraph
from repro.sampling.alias_sampler import AliasSampler
from repro.sampling.base import Sampler
from repro.sampling.hybrid import (
    HybridKernel,
    make_walk_kernel,
    validate_sampler_mode,
)
from repro.sampling.its import InverseTransformSampler
from repro.sampling.rejection import _MAX_REJECTION_ROUNDS, RejectionSampler
from repro.sampling.reservoir import ReservoirSampler
from repro.sampling.uniform import UniformSampler
from repro.sampling.vectorized import VectorizedKernel, seed_sequence_states
from repro.walks.base import Query, WalkResults, WalkSpec
from repro.walks.batch import check_batch_spec, run_walks_batch
from repro.walks.jit import kernels
from repro.walks.jit.compat import NUMBA_AVAILABLE
from repro.walks.reference import EngineStats

_EMPTY_F64 = np.empty(0, dtype=np.float64)
_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_I16 = np.empty(0, dtype=np.int16)

_BASE_CODES: tuple[tuple[type, int, int], ...] = (
    (UniformSampler, kernels.CODE_UNIFORM, kernels.FAMILY_FIRST),
    (AliasSampler, kernels.CODE_ALIAS, kernels.FAMILY_FIRST),
    (InverseTransformSampler, kernels.CODE_ITS, kernels.FAMILY_FIRST),
    (RejectionSampler, kernels.CODE_REJECTION, kernels.FAMILY_REJECTION),
    (ReservoirSampler, kernels.CODE_RESERVOIR, kernels.FAMILY_RESERVOIR),
)

_FALLBACK_WARNED = False


def warn_numba_fallback() -> None:
    """One warning per process: jit requested, numba absent, batch used."""
    global _FALLBACK_WARNED
    if _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED = True
    warnings.warn(
        "numba is not installed; engine 'jit' is falling back to the batch "
        "engine (paths are bit-identical, compiled speed is not) — install "
        "numba to enable the compiled kernels",
        RuntimeWarning,
        stacklevel=3,
    )


def reset_fallback_warning() -> None:
    """Re-arm the once-per-process fallback warning (test hook)."""
    global _FALLBACK_WARNED
    _FALLBACK_WARNED = False


@dataclass
class JitWalkState:
    """Typed arrays + scalars the fused kernel consumes.

    Everything here is derived from a prepared batch kernel (or a
    snapshot's ``SamplerState``), never built independently — one source
    of truth for the tables keeps the two engines bit-identical by
    construction.  Unused slots hold empty arrays so the kernel signature
    stays monomorphic for numba's type cache.
    """

    codes: np.ndarray
    family: int
    alias_prob: np.ndarray = field(default_factory=lambda: _EMPTY_F64)
    alias_index: np.ndarray = field(default_factory=lambda: _EMPTY_I64)
    its_cdf: np.ndarray = field(default_factory=lambda: _EMPTY_F64)
    its_row_totals: np.ndarray = field(default_factory=lambda: _EMPTY_F64)
    edge_keys: np.ndarray = field(default_factory=lambda: _EMPTY_I64)
    return_bias: float = 0.0
    explore_bias: float = 0.0
    max_bias: float = 0.0
    p_inv: float = 0.0
    q_inv: float = 0.0
    second_order: bool = False
    rejection_p: float = 0.0
    rejection_q: float = 0.0


def _base_code_and_family(base: Sampler) -> tuple[int, int]:
    for cls, code, family in _BASE_CODES:
        if isinstance(base, cls):
            return code, family
    raise SamplingError(
        f"no jit kernel family for sampler {base.name!r}; use another engine"
    )


def jit_state_from_arrays(
    graph: CSRGraph, base: Sampler, arrays: dict[str, np.ndarray]
) -> JitWalkState:
    """Build kernel state from prepared arrays (``state_arrays`` /
    ``SamplerState.kernel_arrays`` format).

    ``arrays`` carrying ``hybrid_strategy`` means auto mode (per-row
    codes); otherwise every row runs the base sampler's own strategy.
    Hub-bitmap arrays, when present, are ignored: the kernel's plain
    binary search makes identical decisions.
    """
    code, family = _base_code_and_family(base)
    if "hybrid_strategy" in arrays:
        codes = np.ascontiguousarray(arrays["hybrid_strategy"], dtype=np.int8)
    else:
        codes = np.full(graph.num_vertices, code, dtype=np.int8)
    state = JitWalkState(codes=codes, family=family)
    state.alias_prob = arrays.get("alias_prob", _EMPTY_F64)
    state.alias_index = arrays.get("alias_index", _EMPTY_I64)
    state.its_cdf = arrays.get("its_cdf", _EMPTY_F64)
    state.its_row_totals = arrays.get("its_row_totals", _EMPTY_F64)
    state.edge_keys = arrays.get("edge_keys", _EMPTY_I64)
    if isinstance(base, RejectionSampler):
        state.return_bias = base.return_bias
        state.explore_bias = base.explore_bias
        state.max_bias = base.max_bias
        state.rejection_p = base.p
        state.rejection_q = base.q
    elif isinstance(base, ReservoirSampler):
        state.second_order = base.second_order
        if base.second_order:
            state.p_inv = 1.0 / base.p
            state.q_inv = 1.0 / base.q
    return state


def jit_state_from_kernel(
    graph: CSRGraph, spec: WalkSpec, kernel: VectorizedKernel
) -> JitWalkState:
    """Derive kernel state from a *prepared* batch kernel."""
    base = kernel.base if isinstance(kernel, HybridKernel) else spec.make_sampler()
    return jit_state_from_arrays(graph, base, kernel.state_arrays())


def run_walks_jit_arrays(
    graph: CSRGraph,
    spec: WalkSpec,
    state: JitWalkState,
    start_vertices: np.ndarray,
    query_ids: np.ndarray,
    seed: int = 0,
    stats: EngineStats | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused-kernel core: run walks for aligned start/id arrays.

    Same contract as ``run_walks_batch_arrays`` — returns ``(paths,
    hops)`` with row ``k`` valid through ``paths[k, :hops[k] + 1]`` and
    accumulates every :class:`EngineStats` counter.  Executes the kernel
    whether or not numba is installed (interpreted execution is the
    bit-identity test harness; production fallback lives in
    :func:`run_walks_jit`).
    """
    num_queries = int(start_vertices.size)
    starts = np.array(start_vertices, dtype=np.int64)
    if starts.size and (starts.min() < 0 or starts.max() >= graph.num_vertices):
        bad = int(starts[(starts < 0) | (starts >= graph.num_vertices)][0])
        raise GraphError(
            f"vertex {bad} out of range for graph with {graph.num_vertices} vertices"
        )
    max_length = int(spec.max_length)
    paths = np.empty((num_queries, max_length + 1), dtype=np.int64)
    hops = np.zeros(num_queries, dtype=np.int64)
    if num_queries == 0:
        return paths, hops

    admissible = np.full(max_length, -1, dtype=np.int64)
    term_prob = np.zeros(max_length, dtype=np.float64)
    for step in range(max_length):
        at = spec.admissible_type(step)
        if at is not None:
            admissible[step] = at
        term_prob[step] = spec.termination_probability(step)
    if (
        admissible.size
        and admissible.max() >= 0
        and graph.edge_types is None
        and kernels.CODE_RESERVOIR in state.codes
    ):
        raise SamplingError("admissible_type given but the graph has no edge types")

    states = seed_sequence_states(seed, query_ids)
    cause = np.zeros(num_queries, dtype=np.uint8)
    counters = np.zeros(kernels.N_COUNTERS, dtype=np.int64)
    weights = graph.weights if graph.weights is not None else _EMPTY_F64
    edge_types = graph.edge_types if graph.edge_types is not None else _EMPTY_I16

    args = (
        graph.row_ptr,
        graph.col,
        weights,
        graph.weights is not None,
        edge_types,
        graph.num_vertices,
        state.edge_keys,
        state.codes,
        state.family,
        state.alias_prob,
        state.alias_index,
        state.its_cdf,
        state.its_row_totals,
        state.return_bias,
        state.explore_bias,
        state.max_bias,
        state.p_inv,
        state.q_inv,
        state.second_order,
        spec.needs_prev_vertex,
        admissible,
        term_prob,
        max_length,
        starts,
        states,
        paths,
        hops,
        cause,
        counters,
    )
    if NUMBA_AVAILABLE:
        kernels.walk_kernel(*args)
    else:
        # Interpreted execution hits NumPy's scalar uint64 overflow
        # warning on every wrapping stream bump; the wraparound *is* the
        # RNG, so silence it here (nopython wraps silently).
        with np.errstate(over="ignore"):
            kernels.walk_kernel(*args)

    if counters[kernels.IDX_REJECTION_OVERFLOW]:
        raise SamplingError(
            f"rejection sampling failed to accept after {_MAX_REJECTION_ROUNDS} "
            f"rounds (p={state.rejection_p}, q={state.rejection_q})"
        )
    if stats is not None:
        stats.sampling_proposals += int(counters[kernels.IDX_PROPOSALS])
        stats.neighbor_reads += int(counters[kernels.IDX_READS])
        stats.total_hops += int(hops.sum())
        stats.per_query_hops.extend(int(h) for h in hops)
        stats.dangling_terminations += int(np.count_nonzero(cause == kernels.CAUSE_DANGLING))
        stats.early_terminations += int(np.count_nonzero(cause == kernels.CAUSE_EARLY))
        stats.probabilistic_terminations += int(
            np.count_nonzero(cause == kernels.CAUSE_PROBABILISTIC)
        )
        stats.length_terminations += int(np.count_nonzero(cause == kernels.CAUSE_LENGTH))
    return paths, hops


def run_walks_jit_prepared(
    graph: CSRGraph,
    spec: WalkSpec,
    state: JitWalkState,
    queries: Sequence[Query],
    seed: int = 0,
    stats: EngineStats | None = None,
) -> WalkResults:
    """``Query``-object wrapper over :func:`run_walks_jit_arrays` for an
    already-built :class:`JitWalkState` (the prepared-engine path)."""
    results = WalkResults()
    num_queries = len(queries)
    if num_queries == 0:
        return results
    query_ids = np.fromiter(
        (query.query_id for query in queries), dtype=np.int64, count=num_queries
    )
    starts = np.fromiter(
        (query.start_vertex for query in queries), dtype=np.int64, count=num_queries
    )
    paths, hops = run_walks_jit_arrays(
        graph, spec, state, starts, query_ids, seed=seed, stats=stats
    )
    results.extend_from_matrix(paths, hops)
    return results


def run_walks_jit(
    graph: CSRGraph,
    spec: WalkSpec,
    queries: Sequence[Query],
    seed: int = 0,
    stats: EngineStats | None = None,
    sampler: str = "default",
) -> WalkResults:
    """Execute ``queries`` under ``spec`` with fused per-walker kernels.

    Bit-identical to :func:`repro.walks.batch.run_walks_batch` for any
    ``(graph, spec, queries, seed, sampler)`` — the engines share state
    preparation and the per-hop draw patterns.  Without numba this
    delegates to the batch engine outright (after one warning), so the
    guarantee holds trivially.
    """
    check_batch_spec(spec)
    validate_sampler_mode(sampler)
    if not NUMBA_AVAILABLE:
        warn_numba_fallback()
        return run_walks_batch(graph, spec, queries, seed=seed, stats=stats, sampler=sampler)
    if len(queries) == 0:
        return WalkResults()
    kernel = make_walk_kernel(spec.make_sampler(), sampler)
    kernel.prepare(graph)
    state = jit_state_from_kernel(graph, spec, kernel)
    return run_walks_jit_prepared(graph, spec, state, queries, seed=seed, stats=stats)
