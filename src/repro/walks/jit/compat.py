"""Numba availability shim for the JIT walk kernels.

The kernels in :mod:`repro.walks.jit.kernels` are written as plain
scalar NumPy code and decorated with :func:`njit`.  When numba is
importable that is the real ``numba.njit`` and the kernels compile to
nopython machine code on first call (``cache=True`` persists the
compiled artifact across processes).  When numba is absent the shim is
an identity decorator, so the exact same kernel source runs interpreted
— slower, but bit-identical, which is what lets the equivalence suite
prove the kernel math on hosts without numba.

Production entry points (``--engine jit``) do **not** run the
interpreted kernels: they warn once and delegate to the batch engine
(see :func:`repro.walks.jit.engine.run_walks_jit`).  The interpreted
path is reserved for the test harness, which calls the array-level core
directly.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised via tests that mock the import
    from numba import njit as _numba_njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover
    _numba_njit = None
    NUMBA_AVAILABLE = False


def njit(*args, **kwargs):
    """``numba.njit`` when numba is importable; identity otherwise.

    Supports both decorator spellings: bare ``@njit`` and
    parameterized ``@njit(cache=True)``.
    """
    if NUMBA_AVAILABLE:
        return _numba_njit(*args, **kwargs)
    if args and callable(args[0]) and not kwargs:
        return args[0]

    def decorate(func):
        return func

    return decorate
