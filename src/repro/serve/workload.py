"""Open-loop arrival workloads for driving a :class:`WalkService`.

A *closed-loop* client waits for each response before sending the next
request, which lets a slow server set the pace and hides its queueing
behaviour.  The serving benchmarks instead use *open-loop* arrivals: a
request schedule is drawn up front (Poisson inter-arrival gaps at a
given rate, or back-to-back for a saturation run) and submitted on
schedule regardless of completions — the shape under which tail latency,
micro-batch coalescing, and admission shedding actually show themselves.

Beyond steady Poisson, this module generates the arrival shapes a
multi-tenant service is actually judged on:

* :func:`diurnal_gaps` — a sinusoidal day/night ramp (rate swings around
  its mean), produced by thinning a peak-rate Poisson stream.
* :func:`flash_crowd_gaps` — a piecewise-constant rate that jumps to a
  multiple of nominal for a burst window and falls back: the
  tenant-isolation stress in the QoS benchmark.
* :func:`hub_hammer_starts` — an adversarial start-vertex mix that
  hammers the highest-degree hubs with most of the traffic: the
  hot-walk cache's best case and a skew stress for everything else.

:func:`run_tenant_traces` drives several tenants' schedules against one
service concurrently and returns one :class:`OpenLoopReport` per tenant,
with disjoint query-id ranges so the combined run stays replayable.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServeOverloadError, WalkConfigError
from repro.graph.csr import CSRGraph
from repro.serve.service import WalkService

#: Scenario names understood by :func:`scenario_gaps` (and the CLI).
SCENARIOS = ("steady", "flash-crowd", "diurnal", "hub-hammer")


@dataclass
class OpenLoopReport:
    """Outcome of one open-loop run against a service.

    ``paths`` maps each *completed* request's query id to its walk; shed
    requests appear in ``dropped``, and admitted requests whose
    micro-batch raised appear in ``failed`` — every offered request
    lands in exactly one of the three, so
    ``offered == completed + len(dropped) + len(failed)`` always holds
    (the client-side mirror of the service's accounting identity).
    ``requests`` maps every *submitted* query id to its start vertex —
    exactly the mapping :func:`repro.serve.service.replay_paths` takes —
    and ``epochs`` records the serving epoch of cache-capable requests
    so multi-epoch runs can replay each id against the right graph.
    Service-side metrics (latency percentiles, batch histogram,
    sustained hops/s) live on the service's own ``stats`` — this report
    carries the client's view.
    """

    offered: int = 0
    paths: dict[int, np.ndarray] = field(default_factory=dict)
    dropped: list[int] = field(default_factory=list)
    #: Query ids admitted but resolved with an exception.
    failed: list[int] = field(default_factory=list)
    #: ``{query_id: start_vertex}`` for every submitted request.
    requests: dict[int, int] = field(default_factory=dict)
    #: Query ids served from the hot-walk cache (cached runs only).
    cache_hits: list[int] = field(default_factory=list)
    #: ``{query_id: epoch}`` for cache-capable requests.
    epochs: dict[int, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def completed(self) -> int:
        return len(self.paths)

    def check_identity(self) -> None:
        """Assert the accounting identity; raises ``AssertionError``."""
        resolved = self.completed + len(self.dropped) + len(self.failed)
        assert self.offered == resolved, (
            f"accounting identity broken: offered {self.offered} != "
            f"{self.completed} completed + {len(self.dropped)} dropped + "
            f"{len(self.failed)} failed"
        )


def arrival_gaps(count: int, rate_per_second: float, seed: int = 0) -> np.ndarray:
    """Inter-arrival gaps (seconds) for ``count`` open-loop requests.

    Poisson arrivals at ``rate_per_second``; a non-positive rate means
    back-to-back submission (all gaps zero — the saturation workload).
    Drawn from their own ``default_rng(seed)`` so the arrival process is
    reproducible and independent of the walk randomness.
    """
    if count < 1:
        raise WalkConfigError(f"count must be >= 1, got {count}")
    if rate_per_second <= 0:
        return np.zeros(count, dtype=np.float64)
    rng = np.random.default_rng(seed)
    return rng.exponential(1.0 / rate_per_second, size=count)


def diurnal_gaps(
    count: int,
    mean_rate: float,
    swing: float = 0.8,
    period_seconds: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """Gaps for a sinusoidal rate ramp: ``rate(t) = mean*(1 + swing*sin)``.

    A compressed day/night cycle (``period_seconds`` per "day"): the
    instantaneous rate swings ``±swing`` around ``mean_rate``.  Generated
    by *thinning*: draw a homogeneous Poisson stream at the peak rate,
    then keep each arrival with probability ``rate(t)/peak`` — the
    standard exact construction for inhomogeneous Poisson processes, so
    the kept stream has precisely the sinusoidal intensity.  Returns the
    gaps of the first ``count`` kept arrivals.
    """
    if count < 1:
        raise WalkConfigError(f"count must be >= 1, got {count}")
    if mean_rate <= 0:
        raise WalkConfigError(f"mean_rate must be positive, got {mean_rate}")
    if not 0 <= swing < 1:
        raise WalkConfigError(f"swing must be in [0, 1), got {swing}")
    if period_seconds <= 0:
        raise WalkConfigError(
            f"period_seconds must be positive, got {period_seconds}"
        )
    rng = np.random.default_rng(seed)
    peak = mean_rate * (1.0 + swing)
    gaps = np.empty(count, dtype=np.float64)
    kept = 0
    now = 0.0
    last_kept = 0.0
    while kept < count:
        now += rng.exponential(1.0 / peak)
        phase = 2.0 * np.pi * now / period_seconds
        rate = mean_rate * (1.0 + swing * np.sin(phase))
        if rng.random() < rate / peak:
            gaps[kept] = now - last_kept
            last_kept = now
            kept += 1
    return gaps


def flash_crowd_gaps(
    count: int,
    nominal_rate: float,
    burst_multiplier: float = 8.0,
    burst_fraction: float = 0.5,
    seed: int = 0,
) -> np.ndarray:
    """Gaps for a flash crowd: nominal rate, a burst, nominal again.

    The middle ``burst_fraction`` of the ``count`` requests arrive at
    ``burst_multiplier × nominal_rate``; the leading and trailing
    quarters arrive at ``nominal_rate``.  This is the tenant-isolation
    stress: a best-effort tenant's flash crowd must shed at its own gate
    while a premium tenant's latency stays within its SLO.
    """
    if count < 1:
        raise WalkConfigError(f"count must be >= 1, got {count}")
    if nominal_rate <= 0:
        raise WalkConfigError(
            f"nominal_rate must be positive, got {nominal_rate}"
        )
    if burst_multiplier < 1:
        raise WalkConfigError(
            f"burst_multiplier must be >= 1, got {burst_multiplier}"
        )
    if not 0 < burst_fraction <= 1:
        raise WalkConfigError(
            f"burst_fraction must be in (0, 1], got {burst_fraction}"
        )
    rng = np.random.default_rng(seed)
    burst = int(round(count * burst_fraction))
    lead = (count - burst) // 2
    tail = count - burst - lead
    parts = []
    if lead:
        parts.append(rng.exponential(1.0 / nominal_rate, size=lead))
    if burst:
        parts.append(
            rng.exponential(1.0 / (nominal_rate * burst_multiplier), size=burst)
        )
    if tail:
        parts.append(rng.exponential(1.0 / nominal_rate, size=tail))
    return np.concatenate(parts)


def hub_hammer_starts(
    graph: CSRGraph,
    count: int,
    num_hubs: int = 4,
    hammer_fraction: float = 0.8,
    seed: int = 0,
) -> np.ndarray:
    """Adversarial start mix: most requests hammer the top-degree hubs.

    ``hammer_fraction`` of the ``count`` starts are drawn uniformly from
    the ``num_hubs`` highest-out-degree vertices; the rest are uniform
    over the whole graph.  Shuffled, so hub hits interleave with
    background traffic instead of arriving as one block.  This is the
    hot-walk cache's intended workload (repeated queries on hot
    vertices) and, without a cache, a skew stress.
    """
    if count < 1:
        raise WalkConfigError(f"count must be >= 1, got {count}")
    if num_hubs < 1:
        raise WalkConfigError(f"num_hubs must be >= 1, got {num_hubs}")
    if not 0 <= hammer_fraction <= 1:
        raise WalkConfigError(
            f"hammer_fraction must be in [0, 1], got {hammer_fraction}"
        )
    num_hubs = min(num_hubs, graph.num_vertices)
    hubs = np.argsort(graph.degrees())[::-1][:num_hubs].astype(np.int64)
    rng = np.random.default_rng(seed)
    hammered = int(round(count * hammer_fraction))
    starts = np.concatenate([
        rng.choice(hubs, size=hammered),
        rng.integers(0, graph.num_vertices, size=count - hammered,
                     dtype=np.int64),
    ])
    rng.shuffle(starts)
    return starts


def scenario_gaps(
    scenario: str, count: int, rate_per_second: float, seed: int = 0
) -> np.ndarray:
    """Arrival gaps for a named scenario (see :data:`SCENARIOS`).

    ``steady`` and ``hub-hammer`` use plain Poisson gaps (hub-hammer's
    adversarial character lives in its *start vertices*, via
    :func:`hub_hammer_starts`, not its arrival times); ``diurnal`` and
    ``flash-crowd`` use the shaped generators above.  A non-positive
    rate degenerates every scenario to back-to-back saturation.
    """
    if scenario not in SCENARIOS:
        raise WalkConfigError(
            f"unknown scenario {scenario!r}; choose from {list(SCENARIOS)}"
        )
    if rate_per_second <= 0:
        return arrival_gaps(count, 0.0)
    if scenario == "diurnal":
        return diurnal_gaps(count, rate_per_second, seed=seed)
    if scenario == "flash-crowd":
        return flash_crowd_gaps(count, rate_per_second, seed=seed)
    return arrival_gaps(count, rate_per_second, seed=seed)


async def run_open_loop(
    service: WalkService,
    start_vertices: np.ndarray,
    rate_per_second: float = 0.0,
    arrival_seed: int = 0,
    tenant: str | None = None,
    query_id_base: int = 0,
    use_cache: bool = False,
    gaps: np.ndarray | None = None,
) -> OpenLoopReport:
    """Submit one request per start vertex on an open-loop schedule.

    Query ids are ``query_id_base + position``, which makes every run
    replayable offline via :func:`repro.serve.service.replay_paths`
    (``report.requests`` is exactly the mapping to replay); disjoint
    bases let concurrent tenant runs share one service without id
    collisions.  Requests shed by admission control are recorded and
    *not* retried (open-loop clients do not slow down); everything
    admitted is awaited — a request whose micro-batch raised lands in
    ``report.failed`` instead of taking down the report, and
    ``elapsed_seconds`` is stamped no matter what.  ``gaps`` overrides
    the Poisson schedule with a precomputed one (the scenario
    generators); ``use_cache`` submits through
    :meth:`WalkService.try_submit_cached`, recording each response's
    true query id, epoch, and cache-hit flag.
    """
    starts = np.asarray(start_vertices, dtype=np.int64)
    if gaps is None:
        gaps = arrival_gaps(starts.size, rate_per_second, seed=arrival_seed)
    elif len(gaps) != starts.size:
        raise WalkConfigError(
            f"gaps length {len(gaps)} != start count {starts.size}"
        )
    loop = asyncio.get_running_loop()
    report = OpenLoopReport(offered=int(starts.size))
    pending: dict[int, asyncio.Future] = {}
    began = loop.time()
    for position, (start, gap) in enumerate(
        zip(starts.tolist(), np.asarray(gaps).tolist())
    ):
        query_id = query_id_base + position
        if gap > 0:
            await asyncio.sleep(gap)
        elif position % 256 == 255:
            # Saturation arrivals never sleep, but a submit loop that
            # *never* yields would admit the entire burst before the
            # dispatcher gets a turn — serializing admission before
            # execution instead of pipelining them.  A bare yield every
            # couple hundred requests keeps the burst open-loop while
            # letting the service start executing behind it.
            await asyncio.sleep(0)
        try:
            if use_cache:
                pending[query_id] = service.try_submit_cached(
                    int(start), tenant=tenant
                )
            else:
                pending[query_id] = service.try_submit(
                    int(start), query_id=query_id, tenant=tenant
                )
                report.requests[query_id] = int(start)
        except ServeOverloadError:
            report.dropped.append(query_id)
    for query_id, future in pending.items():
        # Await *every* future: one failed micro-batch must cost exactly
        # its own requests, not the whole report.
        try:
            outcome = await future
        except Exception:
            report.failed.append(query_id)
            continue
        if use_cache:
            # Cached submissions resolve with a ServedWalk whose id (a
            # pool-reserved id on hits) keys the walk's randomness.
            report.paths[outcome.query_id] = outcome.path
            report.requests[outcome.query_id] = int(outcome.path[0])
            report.epochs[outcome.query_id] = outcome.epoch
            if outcome.cache_hit:
                report.cache_hits.append(outcome.query_id)
        else:
            report.paths[query_id] = outcome.path_of(0)
    report.elapsed_seconds = loop.time() - began
    return report


@dataclass(frozen=True)
class TenantTrace:
    """One tenant's schedule for :func:`run_tenant_traces`."""

    tenant: str
    start_vertices: np.ndarray
    gaps: np.ndarray
    use_cache: bool = False


async def run_tenant_traces(
    service: WalkService,
    traces: list[TenantTrace] | tuple[TenantTrace, ...],
    id_stride: int = 1_000_000,
) -> dict[str, OpenLoopReport]:
    """Drive several tenants' open-loop schedules concurrently.

    Each trace runs as its own submit loop (its own clock, its own
    arrival schedule) against the shared service — the open-system shape
    of a real multi-tenant deployment, where one tenant's burst and
    another's steady stream interleave at the admission gates.  Query-id
    ranges are ``i * id_stride``-based per trace, so the union of all
    ``requests`` maps stays collision-free and offline-replayable.
    """
    if not traces:
        raise WalkConfigError("run_tenant_traces needs at least one trace")
    for trace in traces:
        if len(trace.start_vertices) > id_stride:
            raise WalkConfigError(
                f"trace for {trace.tenant!r} has {len(trace.start_vertices)} "
                f"requests, more than id_stride={id_stride}"
            )
    # Cached traces draw auto-assigned ids; push the counter past every
    # explicit range so the union of all id sets stays collision-free.
    service.reserve_query_ids(len(traces) * id_stride)
    reports = await asyncio.gather(*(
        run_open_loop(
            service,
            trace.start_vertices,
            tenant=trace.tenant,
            query_id_base=index * id_stride,
            use_cache=trace.use_cache,
            gaps=trace.gaps,
        )
        for index, trace in enumerate(traces)
    ))
    return {trace.tenant: report for trace, report in zip(traces, reports)}


def serve_open_loop(
    service_factory,
    start_vertices: np.ndarray,
    rate_per_second: float = 0.0,
    arrival_seed: int = 0,
) -> tuple[OpenLoopReport, WalkService]:
    """Synchronous wrapper: build a service, drive it, drain it.

    ``service_factory`` is a zero-argument callable returning an
    unstarted :class:`WalkService` — constructed inside the event loop so
    its futures bind to the right loop.  Returns the report plus the
    (stopped) service for its ``stats`` / ``engine_stats``.  This is the
    entry point the CLI and the benchmark share.
    """

    async def _drive() -> tuple[OpenLoopReport, WalkService]:
        service = service_factory()
        async with service:
            report = await run_open_loop(
                service,
                start_vertices,
                rate_per_second=rate_per_second,
                arrival_seed=arrival_seed,
            )
        return report, service

    return asyncio.run(_drive())
