"""Open-loop arrival workloads for driving a :class:`WalkService`.

A *closed-loop* client waits for each response before sending the next
request, which lets a slow server set the pace and hides its queueing
behaviour.  The serving benchmarks instead use *open-loop* arrivals: a
request schedule is drawn up front (Poisson inter-arrival gaps at a
given rate, or back-to-back for a saturation run) and submitted on
schedule regardless of completions — the shape under which tail latency,
micro-batch coalescing, and admission shedding actually show themselves.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServeOverloadError, WalkConfigError
from repro.serve.service import WalkService


@dataclass
class OpenLoopReport:
    """Outcome of one open-loop run against a service.

    ``paths`` maps each *completed* request's query id to its walk; shed
    requests appear in ``dropped`` instead.  Service-side metrics
    (latency percentiles, batch histogram, sustained hops/s) live on the
    service's own ``stats`` — this report carries the client's view.
    """

    offered: int = 0
    paths: dict[int, np.ndarray] = field(default_factory=dict)
    dropped: list[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def completed(self) -> int:
        return len(self.paths)


def arrival_gaps(count: int, rate_per_second: float, seed: int = 0) -> np.ndarray:
    """Inter-arrival gaps (seconds) for ``count`` open-loop requests.

    Poisson arrivals at ``rate_per_second``; a non-positive rate means
    back-to-back submission (all gaps zero — the saturation workload).
    Drawn from their own ``default_rng(seed)`` so the arrival process is
    reproducible and independent of the walk randomness.
    """
    if count < 1:
        raise WalkConfigError(f"count must be >= 1, got {count}")
    if rate_per_second <= 0:
        return np.zeros(count, dtype=np.float64)
    rng = np.random.default_rng(seed)
    return rng.exponential(1.0 / rate_per_second, size=count)


async def run_open_loop(
    service: WalkService,
    start_vertices: np.ndarray,
    rate_per_second: float = 0.0,
    arrival_seed: int = 0,
) -> OpenLoopReport:
    """Submit one request per start vertex on an open-loop schedule.

    Query ids are the positions ``0..len(start_vertices)-1``, which makes
    every run replayable offline via
    :func:`repro.serve.service.replay_paths`.  Requests shed by
    admission control are recorded and *not* retried (open-loop clients
    do not slow down); everything admitted is awaited to completion.
    """
    starts = np.asarray(start_vertices, dtype=np.int64)
    gaps = arrival_gaps(starts.size, rate_per_second, seed=arrival_seed)
    loop = asyncio.get_running_loop()
    report = OpenLoopReport(offered=int(starts.size))
    pending: dict[int, asyncio.Future] = {}
    began = loop.time()
    for query_id, (start, gap) in enumerate(zip(starts.tolist(), gaps.tolist())):
        if gap > 0:
            await asyncio.sleep(gap)
        elif query_id % 256 == 255:
            # Saturation arrivals never sleep, but a submit loop that
            # *never* yields would admit the entire burst before the
            # dispatcher gets a turn — serializing admission before
            # execution instead of pipelining them.  A bare yield every
            # couple hundred requests keeps the burst open-loop while
            # letting the service start executing behind it.
            await asyncio.sleep(0)
        try:
            pending[query_id] = service.try_submit(start, query_id=query_id)
        except ServeOverloadError:
            report.dropped.append(query_id)
    for query_id, future in pending.items():
        results = await future
        report.paths[query_id] = results.path_of(0)
    report.elapsed_seconds = loop.time() - began
    return report


def serve_open_loop(
    service_factory,
    start_vertices: np.ndarray,
    rate_per_second: float = 0.0,
    arrival_seed: int = 0,
) -> tuple[OpenLoopReport, WalkService]:
    """Synchronous wrapper: build a service, drive it, drain it.

    ``service_factory`` is a zero-argument callable returning an
    unstarted :class:`WalkService` — constructed inside the event loop so
    its futures bind to the right loop.  Returns the report plus the
    (stopped) service for its ``stats`` / ``engine_stats``.  This is the
    entry point the CLI and the benchmark share.
    """

    async def _drive() -> tuple[OpenLoopReport, WalkService]:
        service = service_factory()
        async with service:
            report = await run_open_loop(
                service,
                start_vertices,
                rate_per_second=rate_per_second,
                arrival_seed=arrival_seed,
            )
        return report, service

    return asyncio.run(_drive())
