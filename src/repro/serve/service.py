"""Asyncio walk service: open-queue ingest, dynamic micro-batching.

The engines in :mod:`repro.engines` run *closed* batches: every query is
known up front, the engine runs to completion, the caller gets one
``WalkResults``.  Serving is an *open* system — requests arrive one at a
time, continuously — and the throughput gap between the two shapes is
exactly what dynamic micro-batching closes: the service coalesces
individual requests from an asyncio queue into micro-batches (flushed on
``max_batch`` or ``max_wait_ms``, whichever comes first) and executes
each micro-batch as one closed run on a prepared engine, while the event
loop keeps admitting and coalescing the *next* batch.  That overlap is
the software analogue of RidgeWalker's perfectly pipelined ingest: the
engine never waits for the batcher, the batcher never waits for the
engine.

On top of that, the service is (optionally) **multi-tenant**: each
:class:`~repro.serve.qos.TenantSpec` gets its own admission gate and a
weighted-priority share of every micro-batch
(:class:`~repro.serve.qos.TenantScheduler`), so a flooding tenant sheds
its own traffic instead of starving other tenants' latency SLOs.  And it
(optionally) serves repeated query-id-independent requests from an
epoch-safe **hot-walk cache** (:class:`~repro.serve.cache.HotWalkCache`):
pools of engine-generated walks under reserved query ids, keyed by
``(epoch, start_vertex)`` and invalidated at epoch boundaries.

The service is a scheduling layer, never a semantics layer.  Every
request's randomness is keyed by ``SeedSequence((seed, query_id))`` —
the engines' own per-query substream derivation — so a request's paths
are bit-identical whether it was served alone, inside a micro-batch of
64, from a cache pool, or replayed offline through ``run_walks_batch``
with the same seed.  Batch composition, flush timing, tenant
interleaving, and engine choice (among the bit-compatible
``batch``/``parallel`` pair) cannot change a single vertex;
``tests/serve/`` holds the service to that.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Sequence

import numpy as np

from repro.engines import PreparedEngine, prepare_engine
from repro.errors import GraphError, ServeError, ServeOverloadError
from repro.graph.csr import CSRGraph
from repro.obs.metrics import (
    MetricsRegistry,
    cache_into,
    engine_stats_into,
    serve_stats_into,
)
from repro.obs.trace import active as _active_tracer
from repro.sampling.base import normalize_seed
from repro.serve.admission import AdmissionGate
from repro.serve.cache import POOL_ID_BASE, HotWalkCache, ServedWalk
from repro.serve.qos import DEFAULT_TENANT, TenantScheduler, TenantSpec
from repro.serve.stats import ServeStats
from repro.walks.base import Query, WalkResults, WalkSpec
from repro.walks.reference import EngineStats


@dataclass(frozen=True)
class ServeConfig:
    """Micro-batching and admission knobs.

    ``max_batch``
        Flush a micro-batch as soon as it holds this many requests.
    ``max_wait_ms``
        Flush a non-empty micro-batch this long after its first request,
        even if it is not full — the latency ceiling batching may add.
    ``queue_depth``
        Admission high-water: requests outstanding (queued, coalescing,
        or executing) beyond which new arrivals are shed with
        ``ServeOverloadError``.  Size it with
        :func:`repro.serve.admission.recommended_queue_depth`.  With
        tenants declared, this is the *per-tenant default* for specs
        without their own ``queue_depth``; the global occupancy bound
        becomes the sum of tenant depths.
    ``max_inflight``
        Micro-batches allowed to execute concurrently.  1 (the default)
        already pipelines — batch N+1 coalesces while batch N executes;
        raise it only for engines that multiplex well internally.
    """

    max_batch: int = 64
    max_wait_ms: float = 2.0
    queue_depth: int = 256
    max_inflight: int = 1

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ServeError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_depth < 1:
            raise ServeError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.max_inflight < 1:
            raise ServeError(f"max_inflight must be >= 1, got {self.max_inflight}")


@dataclass
class _PendingRequest:
    """One admitted request waiting for (or undergoing) execution."""

    query: Query
    future: asyncio.Future
    submitted_at: float
    tenant: str = DEFAULT_TENANT
    #: Query-id-independent submissions resolve with a
    #: :class:`~repro.serve.cache.ServedWalk` instead of ``WalkResults``.
    cacheable: bool = False


@dataclass
class _PoolFill:
    """Gate-exempt cache pool generation riding the dispatch queue.

    Carries the reserved-id queries of one pool; executed by the same
    prepared engine as client batches (appended to one, or dispatched
    alone), and installed into the cache keyed by the epoch it actually
    ran on.  No future, no admission accounting — a fill the service
    drops on teardown is only a lost warm-up.
    """

    start_vertex: int
    queries: list[Query] = field(default_factory=list)


@dataclass
class _EpochSwap:
    """A graph-version change queued behind already-admitted requests.

    Rides the same queue as requests, so ordering *is* the epoch
    boundary: everything admitted before the swap executes on the old
    version, everything after on the new one.
    """

    snapshot: object
    future: asyncio.Future


def _merge_engine_stats(into: EngineStats, part: EngineStats) -> None:
    """Fold one micro-batch's engine counters into the service total."""
    into.total_hops += part.total_hops
    into.sampling_proposals += part.sampling_proposals
    into.neighbor_reads += part.neighbor_reads
    into.early_terminations += part.early_terminations
    into.dangling_terminations += part.dangling_terminations
    into.probabilistic_terminations += part.probabilistic_terminations
    into.length_terminations += part.length_terminations
    into.per_query_hops.extend(part.per_query_hops)


class WalkService:
    """Open-queue walk server over a prepared engine.

    Lifecycle: ``await start()`` (or ``async with``), then any number of
    ``await submit(...)`` / ``try_submit(...)`` calls from the event
    loop, then ``await stop()`` — which by default drains everything
    already admitted before tearing down the dispatcher, the executor
    thread(s), and the prepared engine.

    ``engine`` is a registry name (``"batch"``, ``"parallel"``,
    ``"reference"``) resolved through
    :func:`repro.engines.prepare_engine`, or an already-constructed
    :class:`~repro.engines.PreparedEngine`; either way the service owns
    it and closes it on :meth:`stop`.

    ``tenants`` declares the admission classes of a multi-tenant
    service (see :mod:`repro.serve.qos`); requests then carry a
    ``tenant=`` name and per-tenant ledgers appear in
    :attr:`tenant_stats`.  Without it the service runs one anonymous
    class, exactly as before.  ``cache`` attaches a
    :class:`~repro.serve.cache.HotWalkCache` consulted by
    :meth:`try_submit_cached`.
    """

    def __init__(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        engine: str | PreparedEngine = "batch",
        seed: int = 0,
        config: ServeConfig | None = None,
        tenants: Sequence[TenantSpec] | None = None,
        cache: HotWalkCache | None = None,
        **engine_options,
    ) -> None:
        self._config = config or ServeConfig()
        self._seed = normalize_seed(seed)
        # A dynamic GraphSnapshot may stand in for the graph; the service
        # adopts its epoch label and serves its CSR.
        self._initial_epoch = getattr(graph, "epoch", 0)
        graph = getattr(graph, "graph", graph)
        if isinstance(engine, PreparedEngine):
            if engine_options:
                raise ServeError(
                    "engine options only apply when the service builds the "
                    "engine; pass them to prepare_engine instead"
                )
            self._runner = engine
        else:
            # Serving defaults to the runtime-adaptive hybrid sampler: the
            # cost model picks each row's strategy once at prepare time, so
            # the hot path never meets a pathological row.  Replay
            # (:func:`replay_paths`) defaults to the same mode, keeping the
            # offline oracle bit-identical; pass ``sampler="default"`` to
            # pin the spec's single-strategy kernel instead.
            engine_options.setdefault("sampler", "auto")
            self._runner = prepare_engine(engine, graph, spec, **engine_options)
        #: Vertex count of the graph version the *newest queued* swap
        #: targets — requests admitted now execute after every queued
        #: swap, so try_submit validates against this, not against the
        #: currently executing version (tracked separately for rollback
        #: when a queued swap fails to apply).
        self._num_vertices = graph.num_vertices
        self._applied_num_vertices = graph.num_vertices
        self.stats = ServeStats()
        self.engine_stats = EngineStats()
        specs = tuple(tenants) if tenants else (TenantSpec(DEFAULT_TENANT),)
        self._scheduler = TenantScheduler(specs, self._config.queue_depth)
        #: Per-tenant ledgers; populated only for explicitly declared
        #: tenants (an anonymous service keeps one global ledger).
        self.tenant_stats: dict[str, ServeStats] = (
            {spec.name: ServeStats() for spec in specs} if tenants else {}
        )
        self._gate = AdmissionGate(self._scheduler.total_depth())
        self.cache = cache
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self._inflight: asyncio.Semaphore | None = None
        self._drained: asyncio.Event | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._next_query_id = 0
        self._accepting = False
        self._epoch = self._initial_epoch
        #: Swaps queued but not yet applied.  While non-zero, cache
        #: lookups are suspended: a request admitted now executes on an
        #: epoch whose pools do not exist yet, and hotness counts taken
        #: against the dying epoch would only build doomed pools.
        self._swaps_queued = 0

    @property
    def config(self) -> ServeConfig:
        return self._config

    @property
    def seed(self) -> int:
        """The service seed; replaying a request offline with this seed
        and its query id reproduces its paths bit-for-bit."""
        return self._seed

    @property
    def engine_name(self) -> str:
        return self._runner.name

    @property
    def occupancy(self) -> int:
        """Requests admitted and not yet resolved."""
        return self._gate.occupancy

    @property
    def epoch(self) -> int:
        """Version id of the graph new requests are served against."""
        return self._epoch

    @property
    def tenant_names(self) -> tuple[str, ...]:
        """Declared admission classes (a single default when anonymous)."""
        return self._scheduler.tenant_names

    def reserve_query_ids(self, minimum: int) -> None:
        """Advance the auto-id counter to at least ``minimum``.

        Callers that mix explicit query-id ranges with auto-assigned ids
        on one service (the multi-tenant trace driver) use this to keep
        the ranges disjoint — duplicate ids would mean duplicate
        randomness and a colliding replay map.
        """
        if minimum >= POOL_ID_BASE:
            raise ServeError(
                f"query ids >= {POOL_ID_BASE} are reserved for hot-walk "
                f"cache pools, got {minimum}"
            )
        self._next_query_id = max(self._next_query_id, minimum)

    def snapshot_metrics(
        self, registry: MetricsRegistry | None = None
    ) -> MetricsRegistry:
        """Export every ledger this service keeps as a metrics registry.

        Builds (or extends) a :class:`~repro.obs.metrics.MetricsRegistry`
        from the global :class:`~repro.serve.stats.ServeStats` ledger,
        the per-tenant ledgers (labelled ``tenant="..."``), the merged
        engine counters, the hot-walk cache counters (when attached),
        and point-in-time gauges (occupancy, per-tenant backlog, serving
        epoch).  The export copies the ledgers exactly, so the
        accounting identity ``offered == completed + dropped + failed``
        holds per tenant on the exported counters whenever it holds on
        the ledgers; render it with
        :func:`repro.obs.exporters.render_prometheus` or
        :func:`repro.obs.exporters.write_jsonl`.  Safe to call at any
        point in the service lifecycle — it only reads.
        """
        registry = registry if registry is not None else MetricsRegistry()
        serve_stats_into(registry, self.stats)
        for name in sorted(self.tenant_stats):
            serve_stats_into(registry, self.tenant_stats[name], tenant=name)
        engine_stats_into(registry, self.engine_stats, engine=self.engine_name)
        if self.cache is not None:
            cache_into(registry, self.cache)
        registry.gauge(
            "repro_serve_occupancy", "Requests admitted and not yet resolved",
        ).set(self.occupancy)
        registry.gauge(
            "repro_serve_epoch", "Graph version new requests are served against",
        ).set(self._epoch)
        backlog = registry.gauge(
            "repro_serve_backlog",
            "Buffered client requests awaiting batch composition",
        )
        for tenant, depth in self._scheduler.backlog().items():
            backlog.set(depth, tenant=tenant)
        return registry

    async def start(self) -> None:
        """Bring up the dispatcher; idempotent while running."""
        if self._accepting:
            return
        self._queue = asyncio.Queue()
        self._inflight = asyncio.Semaphore(self._config.max_inflight)
        self._drained = asyncio.Event()
        self._drained.set()
        self._executor = ThreadPoolExecutor(
            max_workers=self._config.max_inflight,
            thread_name_prefix="walk-serve",
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._accepting = True

    async def stop(self, drain: bool = True) -> None:
        """Tear the service down.

        With ``drain`` (the default), already-admitted requests are
        executed and resolved first; without it, the dispatcher is
        cancelled immediately and unexecuted requests get
        :class:`ServeError` so no caller hangs on a future that will
        never resolve.
        """
        if self._queue is None:
            # Never started (or already stopped): the prepared engine was
            # still built eagerly in __init__ — a parallel engine holds a
            # worker pool and a shared-memory segment — so release it
            # rather than leak it.  Engine close is idempotent.
            self._runner.close()
            return
        self._accepting = False
        if drain:
            await self._drained.wait()
        assert self._dispatcher is not None
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        for task in list(self._batch_tasks):
            await task
        # Drain leftovers.  Requests only remain on a no-drain stop (the
        # drained event guarantees none otherwise); epoch swaps and cache
        # pool fills can remain on any stop — neither counts against the
        # admission gate, so draining does not wait for them.  Either
        # way, fail the request/swap futures so no caller hangs; fills
        # have no futures and are simply discarded.
        abandoned: Counter[str] = Counter()
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if isinstance(item, _PoolFill):
                # The cache marked this vertex in-flight at enqueue time;
                # without the abort a restart sharing this cache object
                # would treat the vertex as forever-filling and never
                # trigger (or serve) another fill for it.
                self.cache.fill_aborted(item.start_vertex)
                continue
            if not item.future.done():
                item.future.set_exception(
                    ServeError(
                        "service stopped before the "
                        + ("graph swap" if isinstance(item, _EpochSwap) else "request")
                        + " executed"
                    )
                )
            if not isinstance(item, _EpochSwap):
                abandoned[item.tenant] += 1
        if abandoned:
            for tenant, count in abandoned.items():
                self._scheduler.release(tenant, count)
            self._gate.release(sum(abandoned.values()))
            if self._gate.occupancy == 0:
                self._drained.set()
        assert self._executor is not None
        self._executor.shutdown(wait=True)
        self._runner.close()
        self._queue = None
        self._dispatcher = None
        self._executor = None

    async def __aenter__(self) -> "WalkService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def _resolve_tenant(self, tenant: str | None) -> str:
        if tenant is None:
            names = self._scheduler.tenant_names
            if len(names) == 1:
                return names[0]
            raise ServeError(
                f"this service declares tenants {list(names)}; pass tenant="
            )
        self._scheduler.gate(tenant)  # raises ServeError on unknown names
        return tenant

    def _admit(self, tenant: str, start_vertex: int) -> None:
        """Validate and count one request into both gate layers."""
        if start_vertex >= self._num_vertices:
            raise GraphError(
                f"vertex {start_vertex} out of range for graph with "
                f"{self._num_vertices} vertices"
            )
        try:
            self._scheduler.admit(tenant)
        except ServeOverloadError:
            self.stats.record_drop()
            tenant_stats = self.tenant_stats.get(tenant)
            if tenant_stats is not None:
                tenant_stats.record_drop()
            tracer = _active_tracer()
            if tracer is not None:
                tracer.instant("serve.shed", tenant=tenant)
            raise
        # The global gate's high-water is the sum of tenant depths, so a
        # request its tenant admitted always fits here too.
        self._gate.admit()

    def _enqueue(self, request: _PendingRequest) -> None:
        assert self._drained is not None and self._queue is not None
        self._drained.clear()
        self.stats.record_submit(request.submitted_at)
        tenant_stats = self.tenant_stats.get(request.tenant)
        if tenant_stats is not None:
            tenant_stats.record_submit(request.submitted_at)
        self._queue.put_nowait(request)

    def try_submit(
        self, start_vertex: int, query_id: int | None = None,
        tenant: str | None = None,
    ) -> asyncio.Future:
        """Admit one walk request; return the future of its results.

        Sheds with :class:`~repro.errors.ServeOverloadError` past the
        tenant's admission high-water (the error carries the observed
        occupancy).  ``query_id`` defaults to a monotonically assigned
        id; pass one explicitly to make the request replayable offline
        by ``(service seed, query_id)``.  ``tenant`` selects the
        admission class on a multi-tenant service (mandatory there,
        ignored-by-default on an anonymous one).
        """
        if not self._accepting or self._queue is None:
            raise ServeError("service is not running; use 'async with' or start()")
        tenant = self._resolve_tenant(tenant)
        if query_id is None:
            query_id = self._next_query_id
        elif query_id >= POOL_ID_BASE:
            raise ServeError(
                f"query ids >= {POOL_ID_BASE} are reserved for hot-walk "
                f"cache pools, got {query_id}"
            )
        # Validate before admitting: a request that can only fail must be
        # rejected here, at its own call site, not discovered mid-batch
        # where the engine error would poison co-batched requests.
        query = Query(query_id, start_vertex)
        self._admit(tenant, start_vertex)
        # Only advance the auto-id counter for admitted requests, and keep
        # it ahead of explicit ids so mixed usage cannot collide.
        self._next_query_id = max(self._next_query_id, query_id + 1)
        now = asyncio.get_running_loop().time()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._enqueue(_PendingRequest(query, future, now, tenant=tenant))
        return future

    async def submit(
        self, start_vertex: int, query_id: int | None = None,
        tenant: str | None = None,
    ) -> WalkResults:
        """Admit one request and await its :class:`WalkResults` slice."""
        return await self.try_submit(start_vertex, query_id=query_id,
                                     tenant=tenant)

    def try_submit_cached(
        self, start_vertex: int, tenant: str | None = None
    ) -> asyncio.Future:
        """Admit one *query-id-independent* request; may serve from cache.

        The caller asks for "a fresh walk from ``start_vertex``" and
        lets the service pick the query id; the future resolves with a
        :class:`~repro.serve.cache.ServedWalk` carrying the id that
        actually keyed the walk's randomness — a cache-pool reserved id
        on a hit, a service-assigned id on a miss — plus the epoch it
        executed on, so every response replays bit-identically offline.
        Hits resolve immediately, bypass admission (no engine work), and
        count as completions; misses ride the normal admission /
        batching / QoS path and feed the cache's hotness counters.
        """
        if not self._accepting or self._queue is None:
            raise ServeError("service is not running; use 'async with' or start()")
        tenant = self._resolve_tenant(tenant)
        loop = asyncio.get_running_loop()
        # Construct (and thereby validate) up front: a bad vertex must be
        # rejected before it can touch cache counters or gate occupancy.
        # On a hit the query is simply discarded — its id stays unspent.
        query = Query(self._next_query_id, start_vertex)
        if start_vertex >= self._num_vertices:
            raise GraphError(
                f"vertex {start_vertex} out of range for graph with "
                f"{self._num_vertices} vertices"
            )
        # Lookups only against a settled epoch: with a swap queued, this
        # request will execute on a version whose pools cannot exist yet.
        if self.cache is not None and self._swaps_queued == 0:
            entry = self.cache.take(self._epoch, start_vertex)
            if entry is not None:
                pool_id, path = entry
                now = loop.time()
                self.stats.record_submit(now)
                self.stats.record_completion(0.0, now, cache_hit=True)
                tenant_stats = self.tenant_stats.get(tenant)
                if tenant_stats is not None:
                    tenant_stats.record_submit(now)
                    tenant_stats.record_completion(0.0, now, cache_hit=True)
                tracer = _active_tracer()
                if tracer is not None:
                    tracer.instant("serve.cache_hit", vertex=start_vertex,
                                   epoch=self._epoch, tenant=tenant)
                future: asyncio.Future = loop.create_future()
                future.set_result(
                    ServedWalk(pool_id, path, self._epoch, cache_hit=True)
                )
                return future
            fill_queries = self.cache.note_miss(self._epoch, start_vertex)
            if fill_queries is not None:
                # Gate-exempt: pool generation is the service's own work,
                # queued *now* so it lands on the epoch that is hot.
                tracer = _active_tracer()
                if tracer is not None:
                    tracer.instant("serve.cache_fill_queued",
                                   vertex=start_vertex, epoch=self._epoch,
                                   pool_size=len(fill_queries))
                self._queue.put_nowait(_PoolFill(start_vertex, fill_queries))
        self._admit(tenant, start_vertex)
        self._next_query_id += 1
        now = loop.time()
        future = loop.create_future()
        self._enqueue(
            _PendingRequest(query, future, now, tenant=tenant, cacheable=True)
        )
        return future

    async def submit_cached(
        self, start_vertex: int, tenant: str | None = None
    ) -> ServedWalk:
        """Awaitable twin of :meth:`try_submit_cached`."""
        return await self.try_submit_cached(start_vertex, tenant=tenant)

    def try_update_graph(self, snapshot) -> asyncio.Future:
        """Queue a graph swap *now*; returns the future of its epoch id.

        The epoch boundary is the queue position at the moment of this
        call — the synchronous-enqueue twin of :meth:`update_graph`, for
        callers that must interleave a swap between two ``try_submit``
        calls without yielding to the event loop in between.
        """
        if not self._accepting or self._queue is None:
            raise ServeError("service is not running; use 'async with' or start()")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait(_EpochSwap(snapshot, future))
        self._swaps_queued += 1
        # Requests admitted from this point on will execute after the
        # swap, so admission validation must use the new graph's bounds
        # immediately — not when the swap drains the queue.
        graph = getattr(snapshot, "graph", snapshot)
        self._num_vertices = graph.num_vertices
        return future

    async def update_graph(self, snapshot) -> int:
        """Swap the service onto a new graph version; returns its epoch.

        ``snapshot`` is a dynamic
        :class:`~repro.dynamic.graph.GraphSnapshot` (whose prepared
        sampler state makes the swap cheap and whose ``epoch`` labels the
        version) or a plain :class:`CSRGraph` (epoch auto-incremented).
        The swap is an *epoch boundary*, enforced by queue order: every
        request admitted before this call executes on the old version —
        including ones already in flight — and every request admitted
        after it executes on the new one.  Micro-batches never span the
        boundary.  Per-epoch determinism survives: a request's paths
        replay bit-identically offline against its epoch's graph.
        Hot-walk cache pools from older epochs are invalidated the
        moment the swap applies (and are unreachable even before that —
        pools are keyed by epoch).

        The engine swap itself preserves long-lived resources (the
        parallel engine's worker pool survives; see
        :meth:`repro.engines.PreparedEngine.swap_snapshot`).
        """
        return await self.try_update_graph(snapshot)

    async def _apply_swap(self, swap: _EpochSwap) -> None:
        """Execute one queued graph swap between micro-batches.

        Holds *every* inflight permit while swapping, so no micro-batch
        can be executing against the engine mid-swap; the permits also
        order the swap after all batches flushed before it.
        """
        assert self._inflight is not None
        loop = asyncio.get_running_loop()
        acquired = 0
        tracer = _active_tracer()
        if tracer is not None:
            _t_swap = tracer.begin()
        try:
            for _ in range(self._config.max_inflight):
                await self._inflight.acquire()
                acquired += 1
            await loop.run_in_executor(
                self._executor, partial(self._runner.swap_snapshot, swap.snapshot)
            )
        except asyncio.CancelledError:
            self._swaps_queued -= 1
            if not swap.future.done():
                swap.future.set_exception(
                    ServeError("service stopped before the graph swap executed")
                )
            raise
        except Exception as exc:
            # The service keeps serving the old graph; roll admission
            # validation back to it (try_update_graph advanced the bound
            # optimistically at enqueue time).
            self._swaps_queued -= 1
            self._num_vertices = self._applied_num_vertices
            if not swap.future.done():
                swap.future.set_exception(exc)
        else:
            self._swaps_queued -= 1
            graph = getattr(swap.snapshot, "graph", swap.snapshot)
            self._applied_num_vertices = graph.num_vertices
            self._epoch = getattr(swap.snapshot, "epoch", self._epoch + 1)
            if self.cache is not None:
                self.cache.drop_stale(self._epoch)
            if not swap.future.done():
                swap.future.set_result(self._epoch)
        finally:
            for _ in range(acquired):
                self._inflight.release()
            if tracer is not None:
                # Covers the permit sweep (the barrier) plus the engine
                # swap itself; ``epoch`` is the version now serving.
                tracer.end(_t_swap, "serve.epoch_swap", epoch=self._epoch,
                           applied=swap.future.done() and
                           swap.future.exception() is None)

    async def _dispatch_loop(self) -> None:
        """Coalesce requests into micro-batches and hand them off.

        Flush policy: the batch opens when its first request arrives and
        closes at ``max_batch`` requests or ``max_wait_ms`` later,
        whichever comes first.  Ingested requests are buffered in the
        tenant scheduler and each batch is *composed* by weighted
        round-robin over the backlogged tenants (FIFO order with a
        single tenant), with at most one cache pool fill appended.  The
        hand-off acquires the inflight semaphore, so with
        ``max_inflight=1`` the loop collects batch N+1 while batch N
        executes — coalescing rides in the engine's shadow instead of
        adding latency to it.  An :class:`_EpochSwap` in the stream
        closes the open batch early and *barriers*: ingest stops at the
        swap until every request admitted before it has been dispatched
        (batches never span an epoch boundary), then the swap applies.
        """
        assert self._queue is not None and self._inflight is not None
        loop = asyncio.get_running_loop()
        max_wait = self._config.max_wait_ms / 1e3
        scheduler = self._scheduler
        pending_swap: _EpochSwap | None = None
        try:
            while True:
                if not scheduler.has_work() and pending_swap is None:
                    item = await self._queue.get()
                    if isinstance(item, _EpochSwap):
                        pending_swap = item
                    else:
                        scheduler.push(item)
                if pending_swap is None and (
                    0 < scheduler.pending_clients < self._config.max_batch
                ):
                    # Coalescing window: opened by the first buffered
                    # request, closed by max_batch or the deadline.
                    deadline = loop.time() + max_wait
                    while scheduler.pending_clients < self._config.max_batch:
                        # Fast path: drain everything already queued
                        # without touching the event loop.  A timed wait
                        # costs tens of microseconds (timer + wakeup per
                        # call); under a burst that overhead would eat
                        # the coalescing window and flush chronically
                        # under-filled batches.
                        try:
                            item = self._queue.get_nowait()
                        except asyncio.QueueEmpty:
                            remaining = deadline - loop.time()
                            if remaining <= 0:
                                break
                            try:
                                item = await asyncio.wait_for(
                                    self._queue.get(), remaining
                                )
                            except asyncio.TimeoutError:
                                break
                        if isinstance(item, _EpochSwap):
                            pending_swap = item
                            break
                        scheduler.push(item)
                elif pending_swap is None:
                    # Nothing to coalesce for (full buffer or fills
                    # only): just pick up whatever is already queued.
                    while True:
                        try:
                            item = self._queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                        if isinstance(item, _EpochSwap):
                            pending_swap = item
                            break
                        scheduler.push(item)
                if scheduler.has_work():
                    # Acquire *before* composing: a cancellation while
                    # waiting for the permit leaves every request safely
                    # buffered for the teardown requeue below.
                    await self._inflight.acquire()
                    batch = scheduler.next_batch(self._config.max_batch)
                    tracer = _active_tracer()
                    if tracer is not None:
                        tracer.instant("serve.coalesce", size=len(batch),
                                       backlog=scheduler.pending_clients)
                    task = asyncio.create_task(self._execute(batch))
                    self._batch_tasks.add(task)
                    task.add_done_callback(self._batch_tasks.discard)
                if pending_swap is not None and not scheduler.has_work():
                    # Barrier reached: everything admitted before the
                    # swap has been handed off; _apply_swap's permit
                    # sweep orders it after their execution too.
                    await self._apply_swap(pending_swap)
                    pending_swap = None
        except asyncio.CancelledError:
            # Cancelled (a no-drain stop): hand buffered requests and any
            # pending swap back to the queue so stop() can fail their
            # futures instead of leaving callers hanging.
            for item in scheduler.drain_all():
                self._queue.put_nowait(item)
            if pending_swap is not None:
                self._queue.put_nowait(pending_swap)
            raise

    def _record_failure(self, request: _PendingRequest, now: float) -> None:
        self.stats.record_failure(now)
        tenant_stats = self.tenant_stats.get(request.tenant)
        if tenant_stats is not None:
            tenant_stats.record_failure(now)

    async def _execute(self, batch: list) -> None:
        """Run one micro-batch on the engine and resolve its futures.

        ``batch`` holds client :class:`_PendingRequest`\\ s (clients
        first) and at most one :class:`_PoolFill`.  Every admitted
        request leaves through exactly one ledger bucket — completed on
        success, failed when the engine raises — so the accounting
        identity ``offered == completed + dropped + failed`` survives
        engine failures too.
        """
        assert self._inflight is not None and self._drained is not None
        # Stable while we hold an inflight permit: swaps sweep every
        # permit before touching the engine, so the epoch cannot move
        # under an executing batch.
        epoch = self._epoch
        loop = asyncio.get_running_loop()
        clients = [item for item in batch if isinstance(item, _PendingRequest)]
        fills = [item for item in batch if isinstance(item, _PoolFill)]
        queries = [request.query for request in clients]
        for fill in fills:
            queries.extend(fill.queries)
        batch_stats = EngineStats()
        started = loop.time()
        failure: Exception | None = None
        tracer = _active_tracer()
        if tracer is not None:
            _t_exec = tracer.begin()
        try:
            results = await loop.run_in_executor(
                self._executor,
                partial(self._runner.run, queries, seed=self._seed, stats=batch_stats),
            )
        except Exception as exc:
            failure = exc
        now = loop.time()
        if tracer is not None:
            tracer.end(_t_exec, "serve.execute", batch=len(clients),
                       fills=len(fills), queries=len(queries), epoch=epoch,
                       hops=batch_stats.total_hops,
                       tenants=sorted({r.tenant for r in clients}),
                       failed=failure is not None)
        self._inflight.release()
        _merge_engine_stats(self.engine_stats, batch_stats)
        if clients:
            # Pure-fill dispatches stay out of the batch-shape ledger:
            # the histogram and mean describe client-serving batches.
            self.stats.record_batch(
                len(clients), batch_stats.total_hops, now - started
            )
            released: Counter[str] = Counter(request.tenant for request in clients)
            for tenant, count in released.items():
                self._scheduler.release(tenant, count)
            self._gate.release(len(clients))
            if self._gate.occupancy == 0:
                self._drained.set()
        if failure is not None:
            for request in clients:
                if not request.future.done():
                    request.future.set_exception(failure)
                self._record_failure(request, now)
            if self.cache is not None:
                for fill in fills:
                    self.cache.fill_aborted(fill.start_vertex)
            return
        if tracer is not None:
            _t_resp = tracer.begin()
        for position, request in enumerate(clients):
            if not request.future.done():
                if request.cacheable:
                    path = results.path_of(position)
                    if path.base is not None:
                        path = path.copy()
                    request.future.set_result(
                        ServedWalk(request.query.query_id, path, epoch,
                                   cache_hit=False)
                    )
                else:
                    request.future.set_result(results.subset([position]))
            latency = now - request.submitted_at
            self.stats.record_completion(latency, now)
            tenant_stats = self.tenant_stats.get(request.tenant)
            if tenant_stats is not None:
                tenant_stats.record_completion(latency, now)
        if tracer is not None and clients:
            tracer.end(_t_resp, "serve.respond", batch=len(clients))
        if fills and self.cache is not None:
            position = len(clients)
            for fill in fills:
                entries = []
                for query in fill.queries:
                    path = results.path_of(position)
                    position += 1
                    if path.base is not None:
                        path = path.copy()
                    entries.append((query.query_id, path))
                self.cache.install(epoch, fill.start_vertex, entries)
                if tracer is not None:
                    tracer.instant("serve.cache_fill", vertex=fill.start_vertex,
                                   entries=len(entries), epoch=epoch)


def replay_paths(
    graph: CSRGraph,
    spec: WalkSpec,
    requests: dict[int, int],
    seed: int,
    sampler: str = "auto",
) -> dict[int, np.ndarray]:
    """Offline oracle for served requests: ``{query_id: path}``.

    Runs ``{query_id: start_vertex}`` through ``run_walks_batch`` with
    the service seed, in one closed batch.  A correct service returns
    exactly these paths regardless of how its micro-batching happened to
    slice the request stream — the determinism contract the serve tests
    and the CI smoke assert.  This covers cache-served walks too: a
    :class:`~repro.serve.cache.ServedWalk`'s ``query_id`` (a reserved
    pool id on hits) replayed against its ``epoch``'s graph reproduces
    its path bit-for-bit.  ``sampler`` defaults to ``"auto"``, the
    service's own default; replaying a service pinned to
    ``sampler="default"`` must pass the same.
    """
    from repro.walks.batch import run_walks_batch

    queries = [Query(query_id, start) for query_id, start in sorted(requests.items())]
    results = run_walks_batch(graph, spec, queries, seed=seed, sampler=sampler)
    return {
        query.query_id: results.path_of(position)
        for position, query in enumerate(queries)
    }
