"""Multi-tenant QoS: per-tenant admission classes and weighted dispatch.

The plain service treats all traffic as one anonymous stream behind one
admission gate — which means one flooding client spends everyone else's
queue depth and latency budget.  Real walk services (ThunderRW's
application mix: repeated PPR / DeepWalk queries from many products)
carry *classes* of traffic with different rates and different SLOs, so
this module gives :class:`~repro.serve.service.WalkService` tenancy:

* **Per-tenant admission.**  Every :class:`TenantSpec` owns its own
  :class:`~repro.serve.admission.AdmissionGate`, sized from its
  *declared* arrival rate against its *weight share* of service
  capacity (:func:`size_tenant_depths`, built on the same M/M/1[N]
  bulk-service model as the global gate).  A tenant that floods fills
  its own gate and sheds its own traffic; other tenants' gates —
  and therefore their latency SLOs — are untouched.

* **Weighted-priority dispatch.**  :class:`TenantScheduler` buffers
  admitted requests per tenant and composes each micro-batch by smooth
  weighted round-robin over the backlogged tenants: a tenant with
  weight 8 gets 8 batch slots for every 1 a weight-1 tenant gets while
  both are backlogged, and idle tenants donate their slots.  The pick
  sequence is deterministic (no RNG, fixed construction-order
  tie-break), so batch composition — like everything else in the serve
  layer — is reproducible.

QoS is *scheduling, never semantics*: tenancy decides when a request
runs and whether it is shed, but a served request's paths are still
``SeedSequence((seed, query_id))``-determined and bit-identical to the
offline replay oracle regardless of tenant interleaving.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import ServeError
from repro.queueing.mm1n import weighted_capacity_split
from repro.serve.admission import (
    MIN_DEPTH_BATCHES,
    AdmissionGate,
    recommended_queue_depth,
)

#: Tenant name used when a service is built without explicit tenants
#: (and the one `try_submit` assumes when no tenant is given).
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantSpec:
    """One admission class of a multi-tenant service.

    ``weight``
        Dispatch priority share: while several tenants are backlogged,
        batch slots are split proportionally to weight.
    ``rate_per_second``
        The tenant's *declared* arrival rate, used to size its gate via
        :func:`size_tenant_depths` (0 = undeclared: the gate falls back
        to the minimum bulk-service depth or an explicit ``queue_depth``).
    ``queue_depth``
        Explicit admission high-water for this tenant; overrides sizing.
    """

    name: str
    weight: int = 1
    rate_per_second: float = 0.0
    queue_depth: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ServeError("tenant name must be non-empty")
        if self.weight < 1:
            raise ServeError(
                f"tenant {self.name!r} weight must be >= 1, got {self.weight}"
            )
        if self.rate_per_second < 0:
            raise ServeError(
                f"tenant {self.name!r} rate_per_second must be >= 0, "
                f"got {self.rate_per_second}"
            )
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ServeError(
                f"tenant {self.name!r} queue_depth must be >= 1, "
                f"got {self.queue_depth}"
            )


def size_tenant_depths(
    specs: list[TenantSpec] | tuple[TenantSpec, ...],
    service_rate: float,
    max_batch: int,
    safety: float = 4.0,
) -> dict[str, int]:
    """Admission high-water per tenant from declared rates and weights.

    Each tenant's share of service capacity is its weight fraction
    (:func:`repro.queueing.mm1n.weighted_capacity_split`); its depth is
    then the M/M/1[N] recommendation for its declared rate against that
    share.  Tenants without a declared rate get the model's minimum
    (``MIN_DEPTH_BATCHES`` full batches); explicit ``queue_depth``
    overrides win unconditionally.  A tenant whose declared rate exceeds
    its capacity share is unstable *by declaration* and rejected loudly —
    admission control cannot bound its latency, only shed it.
    """
    shares = weighted_capacity_split(
        service_rate,
        [s.weight for s in specs],
        keys=[s.name for s in specs],
    )
    # The split's exact-sum contract is what makes per-tenant sizing
    # sound: a share lost to rounding would size some gate against
    # capacity nobody is ever dispatched.
    if math.fsum(shares) != service_rate:
        raise ServeError(
            f"tenant capacity shares sum to {math.fsum(shares)!r}, not the "
            f"service rate {service_rate!r} being split"
        )
    depths: dict[str, int] = {}
    for spec, share in zip(specs, shares):
        if spec.queue_depth is not None:
            depths[spec.name] = spec.queue_depth
        elif spec.rate_per_second > 0:
            depths[spec.name] = recommended_queue_depth(
                arrival_rate=spec.rate_per_second,
                service_rate=share / max_batch,
                max_batch=max_batch,
                safety=safety,
            )
        else:
            depths[spec.name] = MIN_DEPTH_BATCHES * max_batch
    return depths


class TenantScheduler:
    """Per-tenant admission gates plus weighted-priority batch composition.

    The service's dispatch loop pushes admitted requests (and cache pool
    fills) here instead of batching them FIFO; :meth:`next_batch` then
    composes each micro-batch by smooth weighted round-robin.  Like
    :class:`AdmissionGate`, all state is plain single-threaded (asyncio)
    bookkeeping.

    Smooth weighted round-robin: each pick adds every backlogged
    tenant's weight to its credit, selects the highest credit (first
    declared wins ties), and charges the winner the total backlogged
    weight.  Over any window where a set of tenants stays backlogged,
    picks converge to the weight proportions, and the interleaving is
    smooth (a weight-5 tenant is not served 5-in-a-row).
    """

    def __init__(self, specs: list[TenantSpec] | tuple[TenantSpec, ...],
                 default_depth: int) -> None:
        if not specs:
            raise ServeError("TenantScheduler needs at least one tenant")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ServeError(f"duplicate tenant names in {names}")
        self._specs = {spec.name: spec for spec in specs}
        self._order = names
        self._queues: dict[str, deque] = {name: deque() for name in names}
        self._gates = {
            spec.name: AdmissionGate(spec.queue_depth or default_depth)
            for spec in specs
        }
        self._credit = {name: 0 for name in names}
        self._fills: deque = deque()
        self._pending_clients = 0

    @property
    def tenant_names(self) -> tuple[str, ...]:
        return tuple(self._order)

    @property
    def pending_clients(self) -> int:
        """Client requests buffered and not yet composed into a batch."""
        return self._pending_clients

    def has_work(self) -> bool:
        return self._pending_clients > 0 or bool(self._fills)

    def gate(self, tenant: str) -> AdmissionGate:
        try:
            return self._gates[tenant]
        except KeyError:
            raise ServeError(
                f"unknown tenant {tenant!r}; this service declares "
                f"{self._order}"
            ) from None

    def admit(self, tenant: str) -> None:
        """Count one request into ``tenant``'s gate (sheds past its depth)."""
        self.gate(tenant).admit()

    def release(self, tenant: str, count: int = 1) -> None:
        self.gate(tenant).release(count)

    def total_depth(self) -> int:
        return sum(gate.high_water for gate in self._gates.values())

    def backlog(self) -> dict[str, int]:
        """Buffered-but-undispatched client requests per tenant.

        A point-in-time telemetry gauge (``WalkService.snapshot_metrics``):
        distinct from gate occupancy, which also counts requests already
        composed into an executing micro-batch.
        """
        return {name: len(self._queues[name]) for name in self._order}

    def occupancies(self) -> dict[str, int]:
        """Admitted-and-unresolved requests per tenant (gate view)."""
        return {name: self._gates[name].occupancy for name in self._order}

    def push(self, item) -> None:
        """Buffer one dispatchable item (request or pool fill)."""
        tenant = getattr(item, "tenant", None)
        if tenant is None:
            self._fills.append(item)
        else:
            self._queues[tenant].append(item)
            self._pending_clients += 1

    def _pick(self) -> str:
        backlogged = [name for name in self._order if self._queues[name]]
        total = sum(self._specs[name].weight for name in backlogged)
        best = backlogged[0]
        for name in backlogged:
            self._credit[name] += self._specs[name].weight
            if self._credit[name] > self._credit[best]:
                best = name
        self._credit[best] -= total
        return best

    def next_batch(self, max_batch: int) -> list:
        """Compose one micro-batch: weighted client picks plus one fill.

        Up to ``max_batch`` client requests by weighted round-robin
        (FIFO within each tenant), then at most one pending cache pool
        fill appended whole — fills are atomic (a pool's entries must
        all come from one engine run on one epoch) and gate-exempt, so
        they ride along without displacing client slots.
        """
        batch: list = []
        while self._pending_clients and len(batch) < max_batch:
            batch.append(self._queues[self._pick()].popleft())
            self._pending_clients -= 1
        if self._fills:
            batch.append(self._fills.popleft())
        return batch

    def drain_all(self) -> list:
        """Remove and return everything buffered (dispatcher teardown)."""
        items: list = []
        for name in self._order:
            items.extend(self._queues[name])
            self._queues[name].clear()
        items.extend(self._fills)
        self._fills.clear()
        self._pending_clients = 0
        return items
