"""Admission control for the walk service: bounded occupancy, shed past it.

An open system that admits everything melts: queues grow without bound,
every request's latency goes to infinity, and the operator learns about
the overload from timeouts instead of errors.  The service instead
tracks *occupancy* — requests admitted but not yet resolved, whether
still queued, being coalesced, or executing — and sheds new arrivals
with :class:`~repro.errors.ServeOverloadError` once occupancy reaches a
high-water mark.

The mark itself comes from the same M/M/1[N] bulk-service analytics the
accelerator's zero-bubble scheduler is reasoned with
(:mod:`repro.queueing.mm1n`): the micro-batcher *is* a bulk server that
drains up to ``max_batch`` requests per dispatch, so the model's
offered-load and backlog arguments size the buffer directly.
"""

from __future__ import annotations

import math

from repro.errors import ServeError, ServeOverloadError
from repro.queueing.mm1n import BulkServiceQueue

#: Floor on any recommended depth, in units of micro-batches.  Theorem
#: VI.1's premise — a backlog of at least one full batch guarantees the
#: server never dispatches a partial batch for lack of work — needs one
#: batch buffered while another executes, hence two.
MIN_DEPTH_BATCHES = 2


def recommended_queue_depth(
    arrival_rate: float,
    service_rate: float,
    max_batch: int,
    safety: float = 4.0,
) -> int:
    """Occupancy high-water for a stable open-loop workload.

    Models the micro-batcher as a bulk-service queue: requests arrive
    Poisson(``arrival_rate``), the engine retires ``service_rate``
    requests per second per batch slot, and each dispatch serves at most
    ``max_batch``.  The depth scales the mean M/M/1-style backlog
    ``rho / (1 - rho)`` by ``safety`` (so nominal load practically never
    sheds) and never drops below ``MIN_DEPTH_BATCHES`` full batches (so
    the batcher can always coalesce while a batch executes).  An
    unstable workload (``rho >= 1``) has no finite depth that avoids
    shedding — that is a capacity problem, so it is rejected loudly.
    """
    if safety <= 0:
        raise ServeError(f"safety must be positive, got {safety}")
    queue = BulkServiceQueue(arrival_rate, service_rate, max_batch)
    rho = queue.offered_load
    if not queue.is_stable():
        raise ServeError(
            f"offered load rho={rho:.2f} >= 1: no queue depth bounds latency; "
            "add capacity (workers, a faster engine) or shed at the client"
        )
    backlog_batches = safety * rho / (1.0 - rho)
    depth = max_batch * max(float(MIN_DEPTH_BATCHES), backlog_batches)
    return int(math.ceil(depth))


class AdmissionGate:
    """Occupancy counter with a shed-past-high-water policy.

    The service is single-threaded (asyncio), so plain integer arithmetic
    is race-free; the gate exists to keep the admit/release bookkeeping
    and the shed decision in one auditable place.
    """

    def __init__(self, high_water: int) -> None:
        if high_water < 1:
            raise ServeError(f"high_water must be >= 1, got {high_water}")
        self._high_water = high_water
        self._occupancy = 0

    @property
    def high_water(self) -> int:
        return self._high_water

    @property
    def occupancy(self) -> int:
        """Requests admitted and not yet released."""
        return self._occupancy

    def admit(self) -> None:
        """Count one request in, or shed it.

        Raises :class:`ServeOverloadError` — carrying the observed
        occupancy — when the request would push occupancy past the
        high-water mark.
        """
        if self._occupancy >= self._high_water:
            raise ServeOverloadError(self._occupancy, self._high_water)
        self._occupancy += 1

    def release(self, count: int = 1) -> None:
        """Count ``count`` resolved (or failed) requests out."""
        if count < 0 or count > self._occupancy:
            raise ServeError(
                f"cannot release {count} requests with occupancy {self._occupancy}"
            )
        self._occupancy -= count
