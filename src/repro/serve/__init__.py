"""Async walk-serving layer: open-queue ingest over the closed-batch engines.

``WalkService`` coalesces individual walk requests into dynamic
micro-batches and executes them on a prepared engine; admission control
sheds past a queueing-model-sized high-water mark; ``ServeStats``
records tail latency, batch shape, and sustained throughput.  On top of
that, ``TenantSpec``/``TenantScheduler`` give the service per-tenant
admission classes with weighted-priority dispatch (a flooding tenant
sheds its own traffic, not its neighbors' SLOs), and ``HotWalkCache``
serves repeated query-id-independent requests from epoch-keyed,
pre-generated walk pools.  The service is a scheduling layer only —
per-request determinism (``SeedSequence((seed, query_id))``) survives
any batching, any tenant interleaving, and any cache hit.
"""

from repro.serve.admission import AdmissionGate, recommended_queue_depth
from repro.serve.cache import POOL_ID_BASE, HotWalkCache, ServedWalk
from repro.serve.qos import (
    DEFAULT_TENANT,
    TenantScheduler,
    TenantSpec,
    size_tenant_depths,
)
from repro.serve.service import ServeConfig, WalkService, replay_paths
from repro.serve.stats import ServeStats
from repro.serve.workload import (
    SCENARIOS,
    OpenLoopReport,
    TenantTrace,
    arrival_gaps,
    diurnal_gaps,
    flash_crowd_gaps,
    hub_hammer_starts,
    run_open_loop,
    run_tenant_traces,
    scenario_gaps,
    serve_open_loop,
)

__all__ = [
    "AdmissionGate",
    "DEFAULT_TENANT",
    "HotWalkCache",
    "OpenLoopReport",
    "POOL_ID_BASE",
    "SCENARIOS",
    "ServeConfig",
    "ServeStats",
    "ServedWalk",
    "TenantScheduler",
    "TenantSpec",
    "TenantTrace",
    "WalkService",
    "arrival_gaps",
    "diurnal_gaps",
    "flash_crowd_gaps",
    "hub_hammer_starts",
    "recommended_queue_depth",
    "replay_paths",
    "run_open_loop",
    "run_tenant_traces",
    "scenario_gaps",
    "serve_open_loop",
    "size_tenant_depths",
]
