"""Async walk-serving layer: open-queue ingest over the closed-batch engines.

``WalkService`` coalesces individual walk requests into dynamic
micro-batches and executes them on a prepared engine; admission control
sheds past a queueing-model-sized high-water mark; ``ServeStats``
records tail latency, batch shape, and sustained throughput.  The
service is a scheduling layer only — per-request determinism
(``SeedSequence((seed, query_id))``) survives any batching.
"""

from repro.serve.admission import AdmissionGate, recommended_queue_depth
from repro.serve.service import ServeConfig, WalkService, replay_paths
from repro.serve.stats import ServeStats
from repro.serve.workload import (
    OpenLoopReport,
    arrival_gaps,
    run_open_loop,
    serve_open_loop,
)

__all__ = [
    "AdmissionGate",
    "OpenLoopReport",
    "ServeConfig",
    "ServeStats",
    "WalkService",
    "arrival_gaps",
    "recommended_queue_depth",
    "replay_paths",
    "run_open_loop",
    "serve_open_loop",
]
