"""Serving-side observability: latency, micro-batch shape, throughput.

:class:`ServeStats` is the service's passive ledger.  The event loop
stamps every request on submission and completion (monotonic loop time)
and records every micro-batch it dispatches; the record answers the
questions an operator asks of an open system — tail latency (p50/p95/p99),
how well the batcher is coalescing (micro-batch size histogram), and the
sustained hop throughput between the first arrival and the last
completion.  Engine-side counters (proposals, neighbor reads,
termination causes) stay in :class:`~repro.walks.EngineStats`; this
module only covers what the *service* adds on top of the engine.

Every admitted request ends in exactly one of three buckets —
``completed``, ``failed`` (its micro-batch raised), or, for requests
never admitted, ``dropped`` (shed at the gate) — so the **accounting
identity** ``offered == completed + dropped + failed`` holds on every
drained service and every scenario report; ``tests/serve/`` and the QoS
benchmark assert it.  A multi-tenant service keeps one ``ServeStats``
per tenant (plus the global one), so per-class SLOs are measured from
the same ledger shape.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

#: The latency quantiles every summary reports, in ascending order.
LATENCY_QUANTILES = (50, 95, 99)


@dataclass
class ServeStats:
    """Counters and samples accumulated while a :class:`WalkService` runs.

    Timestamps are caller-provided (the service passes ``loop.time()``)
    so the record is testable without patching clocks; all durations are
    seconds.
    """

    #: Requests admitted past the gate (includes later failures).
    submitted: int = 0
    completed: int = 0
    dropped: int = 0
    #: Admitted requests whose micro-batch raised; they resolve with the
    #: engine's exception and land here instead of ``completed``.
    failed: int = 0
    #: Requests served from the hot-walk cache (subset of ``completed``).
    cache_hits: int = 0
    total_hops: int = 0
    #: Wall-clock engine time summed over micro-batches (busy time).
    busy_seconds: float = 0.0
    #: Per-request submit-to-resolve latency samples.
    latencies: list[float] = field(default_factory=list)
    #: Size of every dispatched micro-batch, in dispatch order.
    batch_sizes: list[int] = field(default_factory=list)
    first_submit: float | None = None
    last_completion: float | None = None

    @property
    def offered(self) -> int:
        """Every request the service saw: admitted plus shed."""
        return self.submitted + self.dropped

    def record_submit(self, now: float) -> None:
        """Note an admitted request's arrival time."""
        self.submitted += 1
        if self.first_submit is None or now < self.first_submit:
            self.first_submit = now

    def record_drop(self) -> None:
        """Note a request shed by admission control."""
        self.dropped += 1

    def record_batch(self, size: int, hops: int, service_seconds: float) -> None:
        """Note one executed micro-batch."""
        self.batch_sizes.append(int(size))
        self.total_hops += int(hops)
        self.busy_seconds += float(service_seconds)

    def record_completion(self, latency: float, now: float,
                          cache_hit: bool = False) -> None:
        """Note one resolved request."""
        self.completed += 1
        if cache_hit:
            self.cache_hits += 1
        self.latencies.append(float(latency))
        if self.last_completion is None or now > self.last_completion:
            self.last_completion = now

    def record_failure(self, now: float) -> None:
        """Note one admitted request resolved with its batch's exception.

        Failures close the request (the accounting identity counts them
        next to completions) but contribute no latency sample — the
        percentiles describe successful service only.
        """
        self.failed += 1
        if self.last_completion is None or now > self.last_completion:
            self.last_completion = now

    def latency_percentiles(self) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` in seconds (NaN if empty)."""
        if not self.latencies:
            return {f"p{q}": float("nan") for q in LATENCY_QUANTILES}
        samples = np.asarray(self.latencies, dtype=np.float64)
        values = np.percentile(samples, LATENCY_QUANTILES)
        return {f"p{q}": float(v) for q, v in zip(LATENCY_QUANTILES, values)}

    def batch_size_histogram(self) -> dict[int, int]:
        """``{micro-batch size: count}``, ascending by size."""
        return dict(sorted(Counter(self.batch_sizes).items()))

    def mean_batch_size(self) -> float:
        """Average micro-batch occupancy (NaN before the first dispatch)."""
        if not self.batch_sizes:
            return float("nan")
        return float(np.mean(self.batch_sizes))

    def sustained_hops_per_second(self) -> float:
        """Hops over the open interval first-submit -> last-completion.

        This is the open-system throughput the acceptance criterion
        compares against the closed-batch engine: it charges the service
        for queueing and batching gaps, not just engine busy time.
        Degenerate windows (one request resolving in the same clock
        reading it arrived) yield ``inf``; presentation layers render
        that as "n/a" rather than a number.
        """
        if self.first_submit is None or self.last_completion is None:
            return 0.0
        elapsed = self.last_completion - self.first_submit
        return self.total_hops / elapsed if elapsed > 0 else float("inf")

    def snapshot(self) -> dict:
        """JSON-ready summary (the shape ``BENCH_serve.json`` embeds).

        Non-finite rates become ``None`` — a zero-elapsed window's
        ``inf`` must not crash the snapshot (``round(inf)`` raises
        ``OverflowError``) nor leak a non-JSON value into the record.
        """
        percentiles = self.latency_percentiles()
        sustained = self.sustained_hops_per_second()
        return {
            "offered": self.offered,
            "completed": self.completed,
            "dropped": self.dropped,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "total_hops": self.total_hops,
            "latency_ms": {
                key: round(value * 1e3, 3) if np.isfinite(value) else None
                for key, value in percentiles.items()
            },
            "batch_size_histogram": {
                str(size): count for size, count in self.batch_size_histogram().items()
            },
            "mean_batch_size": (
                round(self.mean_batch_size(), 2) if self.batch_sizes else None
            ),
            "sustained_hops_per_sec": (
                round(sustained) if np.isfinite(sustained) else None
            ),
            "busy_seconds": round(self.busy_seconds, 4),
        }

    def summary(self) -> str:
        """Human-readable one-stop report (CLI output)."""
        percentiles = self.latency_percentiles()
        latency = ", ".join(
            f"{key} {value * 1e3:.2f}ms" if np.isfinite(value) else f"{key} n/a"
            for key, value in percentiles.items()
        )
        histogram = self.batch_size_histogram()
        shape = ", ".join(f"{size}x{count}" for size, count in histogram.items())
        sustained = self.sustained_hops_per_second()
        sustained_text = (
            f"{sustained:,.0f} hops/s sustained" if np.isfinite(sustained)
            else "hops/s n/a"
        )
        extras = ""
        if self.failed:
            extras += f", {self.failed} failed"
        if self.cache_hits:
            extras += f", {self.cache_hits} cache hits"
        return (
            f"served {self.completed} requests ({self.dropped} shed{extras}), "
            f"{self.total_hops} hops, "
            f"{sustained_text}\n"
            f"latency: {latency}\n"
            f"micro-batches: {len(self.batch_sizes)} dispatched, "
            f"mean size {self.mean_batch_size():.1f} [size x count: {shape}]"
        )
