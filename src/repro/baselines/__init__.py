"""Baseline performance models: FastRW, LightRW, Su et al., gSampler, CPU."""

from repro.baselines.base import BaselineModel, WorkloadTrace, rng_words_per_step
from repro.baselines.cpu import CPUModel
from repro.baselines.fastrw import DEFAULT_CACHE_BYTES, FastRWModel
from repro.baselines.gpu import (
    H100_RANDOM_TX_PER_S,
    REAL_REGIME_BASE_MSTEPS,
    TX_PER_STEP,
    GPUModel,
)
from repro.baselines.lightrw import LightRWModel
from repro.baselines.su import SuModel

__all__ = [
    "BaselineModel",
    "CPUModel",
    "DEFAULT_CACHE_BYTES",
    "FastRWModel",
    "GPUModel",
    "H100_RANDOM_TX_PER_S",
    "LightRWModel",
    "REAL_REGIME_BASE_MSTEPS",
    "SuModel",
    "TX_PER_STEP",
    "WorkloadTrace",
    "rng_words_per_step",
]
