"""gSampler GPU behavioral model (Gong et al., SOSP'23) — Figures 9/10.

gSampler is the state-of-the-art GPU graph-sampling engine.  The paper's
analysis pins its GRW behaviour on three mechanisms, which this model
captures explicitly:

* **warp lockstep divergence** — 32 walks share a warp; the warp stays
  resident until its *longest* walk finishes, so early-terminating lanes
  waste issue slots.  We compute the exact lockstep efficiency
  ``sum(lengths) / sum(32 * warp_max_length)`` from the traced walk
  length distribution — this is the quantity that collapses under the
  Graph500 initiator in Figure 10 and under PPR's geometric lengths in
  Figure 9a.
* **random-access memory bound** — the H100's measured random-access
  bandwidth caps step throughput at ``tx_rate / tx_per_step`` (the red
  dashed line of Figure 10).
* **operating-point calibration** — absolute per-algorithm rates on
  real-world graphs are taken from gSampler's published measurements
  (alias sampling doubles RNG and instruction count, so DeepWalk runs
  far below URW; rejection-sampled Node2Vec enjoys coalesced neighbor
  probes and runs fastest).  A cache factor derated by the *full-scale*
  dataset footprint vs the L2 capacity reproduces the paper's note that
  WG "fits largely in GPU cache".

Two regimes mirror the paper's two experimental setups:

* ``regime="real"`` (Figure 9): per-algorithm calibrated issue rates;
* ``regime="batch"`` (Figure 10): the memory-bound super-batched regime
  where balanced RMAT graphs run near the random-access peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.baselines.base import BaselineModel, WorkloadTrace
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.sim.stats import RunMetrics
from repro.walks.base import Query, WalkSpec

#: H100 random-access transactions per second (derived from the
#: random-access bandwidth benchmark the paper cites [57]).
H100_RANDOM_TX_PER_S = 20e9

#: H100 L2 capacity, for the cache factor.
H100_L2_BYTES = 50 * 1024 * 1024

#: Calibrated real-graph issue rates (MStep/s at lockstep efficiency 1),
#: keyed by sampler name.  Derived from the paper's measured speedups:
#: alias sampling "limits gSampler to just 0.9-2.4% of peak bandwidth",
#: rejection-sampled Node2Vec "allows GPU hardware to capture locality".
REAL_REGIME_BASE_MSTEPS = {
    "uniform": 560.0,
    "alias": 160.0,
    "rejection": 900.0,
    "reservoir": 400.0,
    "inverse-transform": 300.0,
}

#: Random transactions per step, by sampler.
TX_PER_STEP = {
    "uniform": 2.0,
    "alias": 3.0,
    "rejection": 4.0,
    "reservoir": 4.0,
    "inverse-transform": 4.0,
}


@dataclass(frozen=True)
class GPUModel(BaselineModel):
    """Cost model for gSampler on an H100-class GPU."""

    clock_mhz: float = 1000.0  # bookkeeping clock for RunMetrics
    warp_size: int = 32
    tx_rate_per_s: float = H100_RANDOM_TX_PER_S
    l2_bytes: int = H100_L2_BYTES
    regime: str = "real"
    #: Full-scale dataset footprint in bytes for the cache factor;
    #: ``None`` uses the simulated graph's own footprint.
    full_scale_bytes: int | None = None
    base_rates: dict = field(default_factory=lambda: dict(REAL_REGIME_BASE_MSTEPS))

    name = "gSampler"

    def __post_init__(self) -> None:
        if self.regime not in ("real", "batch"):
            raise SimulationError(f"regime must be 'real' or 'batch', got {self.regime!r}")
        if self.warp_size < 1:
            raise SimulationError("warp_size must be >= 1")

    # ------------------------------------------------------------------
    # Model components
    # ------------------------------------------------------------------
    def lockstep_efficiency(self, lengths: np.ndarray) -> float:
        """SIMT divergence loss: useful lane-steps over issued lane-steps.

        Queries fill warps in order; a warp issues (predicated) for all
        lanes until its slowest lane finishes.
        """
        if lengths.size == 0:
            return 1.0
        total_useful = float(lengths.sum())
        total_issued = 0.0
        for start in range(0, lengths.size, self.warp_size):
            warp = lengths[start : start + self.warp_size]
            total_issued += float(warp.max()) * self.warp_size
        if total_issued == 0:
            return 1.0
        return total_useful / total_issued

    def cache_factor(self, graph: CSRGraph) -> float:
        """Throughput derating when the working set spills the L2.

        ``hit_share`` of accesses are L2 hits (full rate); the rest pay
        the HBM random-access path at roughly half the effective rate.
        """
        footprint = self.full_scale_bytes
        if footprint is None:
            footprint = graph.total_bytes()
        hit_share = min(1.0, self.l2_bytes / max(1, footprint))
        return hit_share + (1.0 - hit_share) / 2.2

    def memory_bound_msteps(self, spec: WalkSpec) -> float:
        """The random-access ceiling (the red line of Figure 10)."""
        tx = TX_PER_STEP.get(spec.make_sampler().name, 2.0)
        return self.tx_rate_per_s / tx / 1e6

    def _issue_rate_msteps(self, spec: WalkSpec) -> float:
        sampler_name = spec.make_sampler().name
        if self.regime == "batch":
            return self.memory_bound_msteps(spec)
        try:
            return self.base_rates[sampler_name]
        except KeyError:
            raise SimulationError(f"no calibrated GPU rate for sampler {sampler_name!r}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        queries: Sequence[Query],
        seed: int = 0,
    ) -> RunMetrics:
        if not queries:
            raise SimulationError("GPU model needs at least one query")
        trace = WorkloadTrace(graph, spec, queries, seed=seed)
        efficiency = self.lockstep_efficiency(trace.lengths)
        cache = self.cache_factor(graph)
        rate_msteps = min(
            self._issue_rate_msteps(spec) * efficiency * cache,
            self.memory_bound_msteps(spec) * efficiency,
        )
        rate_msteps = max(rate_msteps, 1e-6)
        seconds = trace.total_steps / (rate_msteps * 1e6) if trace.total_steps else 1e-9
        cycles = max(1, int(round(seconds * self.clock_mhz * 1e6)))
        tx_per_step = TX_PER_STEP.get(spec.make_sampler().name, 2.0)
        total_tx = int(round(trace.total_steps * tx_per_step))
        return RunMetrics(
            total_steps=trace.total_steps,
            cycles=cycles,
            core_mhz=self.clock_mhz,
            random_transactions=total_tx,
            words_transferred=total_tx,
            peak_random_tx_per_cycle=self.tx_rate_per_s / (self.clock_mhz * 1e6),
            extra={
                "model": self.name,
                "regime": self.regime,
                "lockstep_efficiency": efficiency,
                "cache_factor": cache,
                "memory_bound_msteps": self.memory_bound_msteps(spec),
            },
        )
