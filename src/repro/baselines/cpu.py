"""A ThunderRW-style in-memory CPU walker model.

Not part of the paper's headline comparisons (its CPU numbers come from
prior work), but useful as a sanity anchor in examples and as the
slowest rung of the system ladder.  The model: ``threads`` software
walkers, each step paying one dependent DRAM random access partially
hidden by interleaving (ThunderRW's step-interleaving achieves a few
overlapping accesses per core).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.base import BaselineModel, WorkloadTrace
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.sim.stats import RunMetrics
from repro.walks.base import Query, WalkSpec


@dataclass(frozen=True)
class CPUModel(BaselineModel):
    """Cost model for a ThunderRW-like CPU engine (EPYC-class server)."""

    threads: int = 128
    dram_latency_ns: float = 90.0
    #: Overlapped accesses per thread from software interleaving.
    interleave_depth: int = 2
    #: Aggregate random-access ceiling of the socket (transactions/s) —
    #: a few hundred million 64-bit row-miss transactions per second is
    #: what a dual-socket EPYC sustains under full pointer-chase load.
    tx_rate_per_s: float = 5.0e8

    name = "ThunderRW-CPU"

    def run(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        queries: Sequence[Query],
        seed: int = 0,
    ) -> RunMetrics:
        if not queries:
            raise SimulationError("CPU model needs at least one query")
        trace = WorkloadTrace(graph, spec, queries, seed=seed)
        # Two dependent accesses per step, hidden interleave_depth-way.
        per_thread_steps_per_s = self.interleave_depth / (
            2.0 * self.dram_latency_ns * 1e-9
        )
        chase_bound = per_thread_steps_per_s * self.threads
        bandwidth_bound = self.tx_rate_per_s / 2.0
        rate = min(chase_bound, bandwidth_bound)
        seconds = trace.total_steps / rate if trace.total_steps else 1e-9
        clock_mhz = 2000.0
        cycles = max(1, int(round(seconds * clock_mhz * 1e6)))
        return RunMetrics(
            total_steps=trace.total_steps,
            cycles=cycles,
            core_mhz=clock_mhz,
            random_transactions=2 * trace.total_steps,
            words_transferred=2 * trace.total_steps,
            peak_random_tx_per_cycle=self.tx_rate_per_s / (clock_mhz * 1e6),
            extra={"model": self.name},
        )
