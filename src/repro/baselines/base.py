"""Common machinery for the baseline accelerator models.

Every baseline the paper compares against is closed-source (FastRW,
Su et al.) or hardware we do not have (LightRW bitstreams, gSampler on
H100).  Each model here is a *behavioral performance model*: walk
semantics come from the shared reference engine (so the statistics are
exactly right), and timing comes from a round-based cost model
parameterized by the device and the architectural property the paper
identifies as that system's bottleneck (cache collapse, static batch
bubbles, blocking pointer chase, warp lockstep divergence).

All models emit :class:`~repro.sim.stats.RunMetrics`, so benchmark
harnesses treat them interchangeably with the cycle-level RidgeWalker
simulator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sim.stats import RunMetrics
from repro.walks.base import Query, WalkSpec
from repro.walks.reference import EngineStats, run_walks


class BaselineModel(ABC):
    """A modeled GRW system producing RunMetrics for a workload."""

    #: Display name used in benchmark tables.
    name: str = "baseline"

    @abstractmethod
    def run(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        queries: Sequence[Query],
        seed: int = 0,
    ) -> RunMetrics:
        """Execute the workload under this model."""


class WorkloadTrace:
    """Reference-engine trace shared by the cost models.

    Captures exactly what the round-based models need: per-query walk
    lengths (divergence and bubbles), totals of sampling work (scans,
    proposals) and the per-step memory demand.
    """

    def __init__(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        queries: Sequence[Query],
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.num_queries = len(queries)
        stats = EngineStats()
        self.results = run_walks(graph, spec, queries, seed=seed, stats=stats)
        self.stats = stats
        self.lengths = np.asarray(stats.per_query_hops, dtype=np.int64)
        self.total_steps = int(self.lengths.sum())

    def alive_per_round(self, max_rounds: int | None = None) -> np.ndarray:
        """Number of still-walking queries at the start of each round.

        Round ``r`` counts queries whose length exceeds ``r`` — the warp
        lockstep and batch-slot occupancy signal.
        """
        horizon = int(self.lengths.max()) if self.lengths.size else 0
        if max_rounds is not None:
            horizon = min(horizon, max_rounds)
        return np.array(
            [int((self.lengths > r).sum()) for r in range(horizon)], dtype=np.int64
        )

    def mean_scan_words_per_step(self) -> float:
        """Average neighbor-list words a step needs the sampler to read."""
        if self.total_steps == 0:
            return 1.0
        return max(1.0, self.stats.neighbor_reads / self.total_steps)

    def mean_proposals_per_step(self) -> float:
        """Average sampling proposals per step (rejection retries)."""
        if self.total_steps == 0:
            return 1.0
        return max(1.0, self.stats.sampling_proposals / self.total_steps)

    def visit_probability(self) -> np.ndarray:
        """Empirical per-vertex visit distribution (cache-model input)."""
        counts = self.results.visit_counts(self.graph.num_vertices).astype(np.float64)
        total = counts.sum()
        return counts / total if total else counts


def rng_words_per_step(spec: WalkSpec) -> int:
    """64-bit random words one step of this algorithm consumes.

    Alias sampling needs two uniforms, rejection needs two per proposal;
    uniform sampling needs one.  (Used to price FastRW's CPU-pregenerated
    RNG stream, which travels through DRAM.)
    """
    sampler = spec.make_sampler()
    if sampler.name == "alias":
        return 2
    if sampler.name == "rejection":
        return 2
    return 1
