"""LightRW behavioral model (Tan et al., SIGMOD'23) — Figures 8c/8d baseline.

LightRW is the strongest prior FPGA design: a deeply pipelined dataflow
accelerator for Node2Vec/MetaPath with weighted reservoir sampling.  Its
one structural weakness — the one RidgeWalker's scheduler removes — is
**static batched scheduling**: queries are batched in a ring buffer and
every step is issued in a predetermined slot order, so when a walk
terminates early its reserved slots stay empty until the whole batch
drains ("bubble ratios up to 37%", Section III-B).

Model: per batch, per lockstep round, every *slot* (dead or alive) costs
one issue cycle; live slots additionally pay the reservoir scan of their
current neighbor list and the memory transactions.  Because the dataflow
is deeply pipelined, memory latency is overlapped (no chase term) — the
bound is issue slots, scan work, or bandwidth, whichever is largest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.base import BaselineModel, WorkloadTrace
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.memory.spec import DDR4_U250, MemorySpec
from repro.sim.stats import RunMetrics
from repro.walks.base import Query, WalkSpec


@dataclass(frozen=True)
class LightRWModel(BaselineModel):
    """Cost model for LightRW on a DDR4 FPGA (U250)."""

    memory: MemorySpec = DDR4_U250
    core_mhz: float = 300.0
    #: U250 has 4 DDR4 channels; LightRW instantiates one deeply
    #: pipelined walker group per two channels.
    num_pipelines: int = 2
    batch_size: int = 512
    #: Neighbor words the reservoir scanner consumes per cycle per
    #: pipeline — one 512-bit AXI beat (8 x 64-bit) per cycle, the same
    #: datapath width the RidgeWalker sampler model uses.
    scan_words_per_cycle: float = 8.0
    #: Scan tiling cap (one 512B tile), matching the simulator's cap so
    #: hub vertices price identically on both systems.
    scan_tile_words: int = 64

    name = "LightRW"

    def run(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        queries: Sequence[Query],
        seed: int = 0,
    ) -> RunMetrics:
        if not queries:
            raise SimulationError("LightRW model needs at least one query")
        trace = WorkloadTrace(graph, spec, queries, seed=seed)
        scan_words = min(trace.mean_scan_words_per_step(), float(self.scan_tile_words))

        tx_per_cycle = (
            self.memory.channel_tx_per_core_cycle(self.core_mhz)
            * self.memory.num_channels
        )
        seq_words_per_cycle = (
            self.memory.sequential_gbs * 1e9 / 8 / (self.core_mhz * 1e6)
        )

        total_cycles = 0.0
        total_tx = 0
        total_words = 0
        bubble_slots = 0
        live_slots = 0
        lengths = trace.lengths
        for batch_start in range(0, len(lengths), self.batch_size):
            batch = lengths[batch_start : batch_start + self.batch_size]
            slots = int(batch.size)
            for r in range(int(batch.max()) if batch.size else 0):
                alive = int((batch > r).sum())
                if alive == 0:
                    break
                # Every slot, dead or alive, occupies its issue position:
                # that is the static-order bubble.
                issue_cycles = slots / self.num_pipelines
                scan_cycles = (
                    alive * scan_words / (self.scan_words_per_cycle * self.num_pipelines)
                )
                random_tx = alive * 2  # RP entry + first CL tile per step
                seq_word_count = alive * scan_words
                bandwidth_cycles = random_tx / tx_per_cycle + (
                    seq_word_count / seq_words_per_cycle
                )
                total_cycles += max(issue_cycles, scan_cycles, bandwidth_cycles)
                total_tx += random_tx
                total_words += int(round(random_tx + seq_word_count))
                bubble_slots += slots - alive
                live_slots += alive
        total_cycles = max(1.0, total_cycles)

        return RunMetrics(
            total_steps=trace.total_steps,
            cycles=int(round(total_cycles)),
            core_mhz=self.core_mhz,
            random_transactions=total_tx,
            words_transferred=total_words,
            peak_random_tx_per_cycle=tx_per_cycle,
            bubble_cycles=bubble_slots,
            pipeline_cycles=bubble_slots + live_slots,
            extra={
                "model": self.name,
                "bubble_ratio_slots": (
                    bubble_slots / (bubble_slots + live_slots)
                    if bubble_slots + live_slots
                    else 0.0
                ),
            },
        )
