"""FastRW behavioral model (Gao et al., DATE'23) — the Figure 8a baseline.

FastRW is a dataflow accelerator that caches frequently-accessed vertices
in on-chip SRAM and pre-generates random numbers on the CPU.  The paper's
analysis (Observation #1, Figures 3a and 8a) attributes its behaviour to
three mechanisms, all modeled here:

* **cache cliff** — row-pointer/alias state for the hottest vertices
  lives on-chip; once the working set exceeds SRAM, every step becomes a
  dependent DRAM pointer chase.  Hit rates come from the *measured* visit
  distribution of the actual walks, with the hottest vertices cached
  first (frequency-based, as FastRW does).
* **blocking pointer chase** — the dataflow keeps only a couple of
  dependent accesses in flight per pipeline (``chase_depth``), so misses
  serialize on the DRAM round trip.
* **RNG streaming** — pre-generated random numbers are loaded from HBM,
  spending sequential bandwidth that graph accesses could have used.

Execution is batch-rounds with a barrier per round (static scheduling):
each round advances every live walk one step; the round ends when the
slowest pipeline finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.base import BaselineModel, WorkloadTrace, rng_words_per_step
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.memory.spec import HBM2_U50, MemorySpec
from repro.sim.stats import RunMetrics
from repro.walks.base import Query, WalkSpec

#: On-chip SRAM budget for the vertex cache.  An Alveo U50 exposes
#: roughly 25 MB of BRAM+URAM; the Table II stand-ins are scaled ~1/100,
#: so the cache scales identically to preserve the fits/doesn't-fit
#: boundary of Figure 3a (WG fits, LJ does not).
DEFAULT_CACHE_BYTES = 25 * 1024 * 1024 // 100


@dataclass(frozen=True)
class FastRWModel(BaselineModel):
    """Cost model for FastRW on an HBM FPGA."""

    memory: MemorySpec = HBM2_U50
    core_mhz: float = 300.0
    num_pipelines: int = 16
    batch_size: int = 256
    #: Dependent accesses a pipeline keeps in flight during pointer chase.
    chase_depth: int = 2
    cache_bytes: int = DEFAULT_CACHE_BYTES

    name = "FastRW"

    def run(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        queries: Sequence[Query],
        seed: int = 0,
    ) -> RunMetrics:
        if not queries:
            raise SimulationError("FastRW model needs at least one query")
        trace = WorkloadTrace(graph, spec, queries, seed=seed)
        hit_rate = self.cache_hit_rate(graph, spec, trace)

        tx_per_cycle = (
            self.memory.channel_tx_per_core_cycle(self.core_mhz)
            * self.memory.num_channels
        )
        seq_words_per_cycle = (
            self.memory.sequential_gbs * 1e9 / 8 / (self.core_mhz * 1e6)
        )
        round_trip = self.memory.round_trip_cycles
        rng_words = rng_words_per_step(spec)

        total_cycles = 0.0
        total_tx = 0
        total_words = 0
        lengths = trace.lengths
        horizon = int(lengths.max()) if lengths.size else 0
        for batch_start in range(0, len(lengths), self.batch_size):
            batch = lengths[batch_start : batch_start + self.batch_size]
            for r in range(int(batch.max()) if batch.size else 0):
                alive = int((batch > r).sum())
                if alive == 0:
                    break
                # Memory demand of the round.
                misses = alive * (1.0 - hit_rate)
                random_tx = misses + alive  # RP misses + CL access per step
                bandwidth_cycles = random_tx / tx_per_cycle
                rng_cycles = alive * rng_words / seq_words_per_cycle
                # Dependent pointer chases serialize per pipeline.
                chase_cycles = (misses / self.num_pipelines) * (
                    round_trip / self.chase_depth
                )
                issue_cycles = alive / self.num_pipelines
                round_cycles = (
                    max(bandwidth_cycles, chase_cycles, issue_cycles) + rng_cycles
                )
                # Static schedule: barrier at the end of every round.
                total_cycles += round_cycles + round_trip / self.chase_depth
                total_tx += int(round(random_tx))
                total_words += int(round(random_tx + alive * rng_words))
        total_cycles = max(1.0, total_cycles)

        return RunMetrics(
            total_steps=trace.total_steps,
            cycles=int(round(total_cycles)),
            core_mhz=self.core_mhz,
            random_transactions=total_tx,
            words_transferred=total_words,
            peak_random_tx_per_cycle=tx_per_cycle,
            extra={
                "model": self.name,
                "cache_hit_rate": hit_rate,
                "cache_bytes": self.cache_bytes,
                "horizon": horizon,
            },
        )

    # ------------------------------------------------------------------
    # Cache model
    # ------------------------------------------------------------------
    def cache_hit_rate(
        self, graph: CSRGraph, spec: WalkSpec, trace: WorkloadTrace
    ) -> float:
        """Visit-weighted hit rate of the frequency-based vertex cache.

        FastRW caches the hottest vertices' row-pointer state (including
        alias metadata, hence the per-entry size follows Table I's RP
        entry width).  Over a production-sized query stream, frequency
        caching converges to holding the vertices with the highest
        stationary visit probability, which for random walks is the
        in-degree distribution — so the hit rate is the in-degree mass
        of the vertices that fit.  (Using the small traced sample would
        flatter the cache: a few hundred queries only ever visit a
        fraction of the graph.)
        """
        entry_bytes = spec.rp_entry_bits // 8
        capacity_vertices = self.cache_bytes // entry_bytes
        if capacity_vertices >= graph.num_vertices:
            return 1.0
        if capacity_vertices <= 0:
            return 0.0
        in_degree = np.bincount(graph.col, minlength=graph.num_vertices).astype(np.float64)
        total = in_degree.sum()
        if total == 0:
            return 0.0
        hottest = np.argsort(in_degree)[::-1][:capacity_vertices]
        return float(in_degree[hottest].sum() / total)

    def working_set_fits(self, graph: CSRGraph, spec: WalkSpec) -> bool:
        """Whether the whole RP array fits on-chip (Figure 3a boundary)."""
        return graph.row_pointer_bytes(spec.rp_entry_bits) <= self.cache_bytes
