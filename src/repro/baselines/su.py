"""Su et al. behavioral model (FPL'21) — the Figure 8b baseline.

Su et al. built the first HBM-enabled FPGA random walker: a pool of
independent sequential walkers per memory channel.  Each walker executes
Algorithm II.1 literally — read row pointer, sample, read column entry —
with the next access issued only after the previous returns.  Latency is
hidden only by the walker pool's width, not by decoupled issue, so
throughput per pipeline is ``pool / (2 * round_trip)`` steps per cycle;
RidgeWalker's async engine beats it by keeping two orders of magnitude
more requests in flight (the 9.2x / 9.9x of Figure 8b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.base import BaselineModel, WorkloadTrace
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.memory.spec import HBM2_U280, MemorySpec
from repro.sim.stats import RunMetrics
from repro.walks.base import Query, WalkSpec


@dataclass(frozen=True)
class SuModel(BaselineModel):
    """Cost model for Su et al.'s HBM random walker (U280)."""

    memory: MemorySpec = HBM2_U280
    core_mhz: float = 250.0
    num_pipelines: int = 16
    #: Interleaved sequential walkers per pipeline.  Calibrated so the
    #: model lands at the ~200 MStep/s the paper's 9.2-9.9x speedups
    #: imply for Su et al.'s WG runs.
    walker_pool: int = 10

    name = "Su et al."

    def run(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        queries: Sequence[Query],
        seed: int = 0,
    ) -> RunMetrics:
        if not queries:
            raise SimulationError("Su model needs at least one query")
        trace = WorkloadTrace(graph, spec, queries, seed=seed)

        round_trip = self.memory.round_trip_cycles
        # Each step chains two dependent accesses; a pool of W walkers
        # overlaps W such chains per pipeline.
        steps_per_cycle_per_pipeline = self.walker_pool / (2.0 * round_trip)
        tx_per_cycle = (
            self.memory.channel_tx_per_core_cycle(self.core_mhz)
            * self.memory.num_channels
        )
        chase_bound = steps_per_cycle_per_pipeline * self.num_pipelines
        bandwidth_bound = tx_per_cycle / 2.0  # two transactions per step
        steps_per_cycle = min(chase_bound, bandwidth_bound)

        cycles = max(1, int(round(trace.total_steps / steps_per_cycle)))
        total_tx = 2 * trace.total_steps
        return RunMetrics(
            total_steps=trace.total_steps,
            cycles=cycles,
            core_mhz=self.core_mhz,
            random_transactions=total_tx,
            words_transferred=total_tx,
            peak_random_tx_per_cycle=tx_per_cycle,
            extra={
                "model": self.name,
                "chase_bound_steps_per_cycle": chase_bound,
                "bandwidth_bound_steps_per_cycle": bandwidth_bound,
            },
        )
