"""Distributed shard-routed walk engine (``--engine dist``).

The CSR graph is partitioned across N worker processes with the
degree-aware cost model of :mod:`repro.parallel.planner`; each shard
runs the vectorized batch superstep over its own shared-memory segment,
and in-flight walkers are *forwarded* between shards through per-pair
message queues — the software analogue of RidgeWalker's butterfly-routed
walker dispatch, and of ThunderRW/LightRW's move-the-walker-to-the-data
placement.  Results are bit-identical to ``--engine batch`` for any
shard count and any forwarding interleave, because every walker carries
its own ``SeedSequence((seed, query_id))`` substream state with it.
"""

from repro.dist.engine import DistWalkEngine, run_walks_dist
from repro.dist.shard import (
    ShardGraphView,
    build_shard_stores,
    partition_vertices,
    shard_view_from_store,
)

__all__ = [
    "DistWalkEngine",
    "run_walks_dist",
    "ShardGraphView",
    "build_shard_stores",
    "partition_vertices",
    "shard_view_from_store",
]
