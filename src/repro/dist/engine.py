"""Parent-side coordinator of the distributed walk engine.

:class:`DistWalkEngine` partitions the graph once (degree-aware, via the
parallel planner's cost model), serializes each shard into its own
shared-memory segment, and keeps one long-lived worker process per
shard.  A run is a sequence of parent-coordinated supersteps: the parent
broadcasts ``("step", k)`` to every shard, the shards advance their
resident walkers and forward departures to each other through per-pair
queues (see :mod:`repro.dist.worker`), and the parent stops as soon as
the global alive count hits zero.  Paths are assembled parent-side from
the shards' hop logs — every logged hop is ``(query position, step,
vertex)``, so assembly is one vectorized scatter regardless of how many
times a walker changed shards.

Determinism contract: bit-identical ``WalkResults`` and ``EngineStats``
to ``run_walks_batch`` for any shard count and any forwarding
interleave, because walkers carry their own
``SeedSequence((seed, query_id))`` substream state across shard
boundaries.  Enforced by ``tests/dist/`` and
``benchmarks/bench_dist_engine.py``.
"""

from __future__ import annotations

from queue import Empty
from typing import Sequence

import numpy as np

from repro.dist.shard import build_shard_stores, partition_vertices
from repro.dist.worker import shard_worker_main
from repro.errors import DistError, GraphError, WalkConfigError
from repro.graph.csr import CSRGraph
from repro.obs.trace import active as _active_tracer
from repro.parallel.engine import _pick_context, default_workers
from repro.parallel.worker import STAT_FIELDS
from repro.sampling.hybrid import make_walk_kernel, validate_sampler_mode
from repro.sampling.vectorized import seed_sequence_states
from repro.walks.base import Query, WalkResults, WalkSpec
from repro.walks.batch import check_batch_spec
from repro.walks.reference import EngineStats

#: Upper bound on any single worker reply.  Supersteps are vectorized
#: and bounded by the shard's resident count, so a silent worker past
#: this is dead, not slow.
_REPLY_TIMEOUT = 300.0


class DistWalkEngine:
    """A persistent ring of shard workers over a partitioned graph.

    Construction pays the one-time costs — kernel preparation,
    partitioning, per-shard segment serialization, worker start-up;
    every :meth:`run` after that only ships walker descriptors and hop
    logs.  Close the engine (or use it as a context manager) to stop the
    workers and unlink the segments.
    """

    def __init__(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        shards: int | None = None,
        sampler: str = "default",
    ) -> None:
        check_batch_spec(spec)
        validate_sampler_mode(sampler)
        if shards is not None and shards < 1:
            raise WalkConfigError(f"shards must be >= 1, got {shards}")
        self._graph = graph
        self._spec = spec
        self._sampler_mode = sampler
        self._num_shards = int(shards) if shards is not None else default_workers()
        #: Routing/occupancy telemetry of the most recent :meth:`run`
        #: (``steps``, ``forwarded``, ``forward_rate``,
        #: ``per_shard_processed``); the dist benchmark reports it.
        self.last_run_stats: dict | None = None

        kernel = make_walk_kernel(spec.make_sampler(), sampler)
        kernel.prepare(graph)
        self._owner = partition_vertices(graph, spec, self._num_shards)
        self._stores = build_shard_stores(
            graph, kernel.state_arrays(), self._owner, self._num_shards
        )
        self._processes: list = []
        self._ctrl: list = []
        self._out = None
        try:
            context = _pick_context()
            out = context.Queue()
            self._ctrl = [context.Queue() for _ in range(self._num_shards)]
            # pair[i][j] carries walkers departing shard i for shard j.
            pair = {
                i: {
                    j: context.Queue()
                    for j in range(self._num_shards)
                    if j != i
                }
                for i in range(self._num_shards)
            }
            for shard in range(self._num_shards):
                send_queues = pair[shard]
                recv_queues = {
                    peer: pair[peer][shard]
                    for peer in range(self._num_shards)
                    if peer != shard
                }
                process = context.Process(
                    target=shard_worker_main,
                    args=(
                        shard,
                        self._stores[shard].handle,
                        spec,
                        sampler,
                        self._ctrl[shard],
                        out,
                        send_queues,
                        recv_queues,
                    ),
                    daemon=True,
                )
                process.start()
                self._processes.append(process)
            self._out = out
            self._gather("ready")
        except BaseException:
            for process in self._processes:
                if process.is_alive():
                    process.terminate()
            self._processes = []
            self._out = None
            for store in self._stores:
                store.close()
            raise

    @property
    def shards(self) -> int:
        return self._num_shards

    def _gather(self, kind: str) -> list[tuple]:
        """One reply of ``kind`` from every shard, any arrival order.

        A worker that crashed reports ``("error", ...)`` instead; its
        traceback is re-raised here so failures surface with the shard's
        real stack, never as a bare timeout.
        """
        replies = []
        for _ in range(self._num_shards):
            try:
                message = self._out.get(timeout=_REPLY_TIMEOUT)
            except Empty:
                raise DistError(
                    f"shard worker sent no {kind!r} reply within "
                    f"{_REPLY_TIMEOUT:.0f}s — worker presumed dead"
                ) from None
            if message[0] == "error":
                raise DistError(
                    f"shard {message[1]} failed: {message[2]}\n{message[3]}"
                )
            if message[0] != kind:
                raise DistError(
                    f"protocol violation: expected {kind!r} from shard "
                    f"workers, got {message[0]!r}"
                )
            replies.append(message)
        return replies

    def run(
        self,
        queries: Sequence[Query],
        seed: int = 0,
        stats: EngineStats | None = None,
    ) -> WalkResults:
        """Execute ``queries``, bit-identical to ``run_walks_batch``."""
        if self._out is None:
            raise WalkConfigError("dist engine is closed")
        results = WalkResults()
        num_queries = len(queries)
        if num_queries == 0:
            return results
        query_ids = np.fromiter(
            (query.query_id for query in queries), dtype=np.int64, count=num_queries
        )
        starts = np.fromiter(
            (query.start_vertex for query in queries), dtype=np.int64, count=num_queries
        )
        if starts.min() < 0 or starts.max() >= self._graph.num_vertices:
            bad = int(starts[(starts < 0) | (starts >= self._graph.num_vertices)][0])
            raise GraphError(
                f"vertex {bad} out of range for graph with "
                f"{self._graph.num_vertices} vertices"
            )

        tracer = _active_tracer()
        if tracer is not None:
            _t_plan = tracer.begin()
        states = seed_sequence_states(seed, query_ids)
        start_owner = self._owner[starts]
        for shard in range(self._num_shards):
            mine = np.nonzero(start_owner == shard)[0]
            self._ctrl[shard].put(("run", mine, starts[mine], states[mine]))
        if tracer is not None:
            tracer.end(_t_plan, "dist.plan", queries=num_queries,
                       shards=self._num_shards)
            _t_dispatch = tracer.begin()

        alive = num_queries
        steps_run = 0
        forwarded_total = 0
        per_shard_processed = np.zeros(self._num_shards, dtype=np.int64)
        for step in range(self._spec.max_length):
            if alive == 0:
                break
            for ctrl in self._ctrl:
                ctrl.put(("step", step))
            alive = 0
            step_forwarded = 0
            for message in self._gather("stepped"):
                _, shard, shard_alive, shard_forwarded, shard_processed = message
                alive += shard_alive
                step_forwarded += shard_forwarded
                per_shard_processed[shard] += shard_processed
            forwarded_total += step_forwarded
            steps_run += 1
            if tracer is not None:
                tracer.instant("dist.step", step=step, alive=alive,
                               forwarded=step_forwarded)
        if tracer is not None:
            tracer.end(_t_dispatch, "dist.dispatch", steps=steps_run,
                       forwarded=forwarded_total, shards=self._num_shards)
            _t_merge = tracer.begin()

        for ctrl in self._ctrl:
            ctrl.put(("collect",))
        log_pos, log_step, log_vert = [], [], []
        counter_totals = np.zeros(len(STAT_FIELDS), dtype=np.int64)
        for message in self._gather("collected"):
            _, _shard, positions, steps, vertices, counts = message
            log_pos.append(positions)
            log_step.append(steps)
            log_vert.append(vertices)
            counter_totals += counts
        positions = np.concatenate(log_pos)
        steps = np.concatenate(log_step)
        vertices = np.concatenate(log_vert)

        hops = np.bincount(positions, minlength=num_queries).astype(np.int64)
        width = int(steps.max()) + 2 if steps.size else 1
        paths = np.empty((num_queries, width), dtype=np.int64)
        paths[:, 0] = starts
        if positions.size:
            paths[positions, steps + 1] = vertices
        results.extend_from_matrix(paths, hops)
        if tracer is not None:
            tracer.end(_t_merge, "dist.merge", queries=num_queries,
                       hops=int(hops.sum()))

        total_hops = int(hops.sum())
        if stats is not None:
            for name, value in zip(STAT_FIELDS, counter_totals):
                setattr(stats, name, getattr(stats, name) + int(value))
            stats.total_hops += total_hops
            stats.per_query_hops.extend(int(h) for h in hops)
        self.last_run_stats = {
            "steps": steps_run,
            "forwarded": forwarded_total,
            "forward_rate": forwarded_total / total_hops if total_hops else 0.0,
            "per_shard_processed": per_shard_processed.tolist(),
        }
        return results

    def swap_graph(
        self, graph: CSRGraph, kernel_arrays: dict | None = None
    ) -> None:
        """Point the live shard workers at a new graph version.

        Barrier-like protocol: the parent repartitions, serializes one
        fresh segment per shard, broadcasts exactly one ``adopt`` per
        worker, and only after *every* worker has acked does it unlink
        the old segments — no worker can observe a mixed epoch, and no
        walkers exist between runs to straddle one.  A failed broadcast
        closes the new segments and leaves the old generation live.
        """
        if self._out is None:
            raise WalkConfigError("dist engine is closed")
        if graph.num_vertices != self._graph.num_vertices:
            raise WalkConfigError(
                f"cannot swap to a graph with {graph.num_vertices} vertices; "
                f"the engine was built for {self._graph.num_vertices}"
            )
        tracer = _active_tracer()
        if tracer is not None:
            _t_swap = tracer.begin()
        if kernel_arrays is None:
            kernel = make_walk_kernel(self._spec.make_sampler(), self._sampler_mode)
            kernel.prepare(graph)
            kernel_arrays = kernel.state_arrays()
        owner = partition_vertices(graph, self._spec, self._num_shards)
        new_stores = build_shard_stores(
            graph, kernel_arrays, owner, self._num_shards
        )
        try:
            for shard, ctrl in enumerate(self._ctrl):
                ctrl.put(("adopt", new_stores[shard].handle))
            acked = {message[1] for message in self._gather("adopted")}
            if acked != set(range(self._num_shards)):  # pragma: no cover
                raise DistError(
                    f"graph swap acked by shards {sorted(acked)} of "
                    f"{self._num_shards}"
                )
        except Exception:
            for store in new_stores:
                store.close()
            raise
        old_stores = self._stores
        self._stores = new_stores
        for store in old_stores:
            store.close()
        self._graph = graph
        self._owner = owner
        if tracer is not None:
            tracer.end(_t_swap, "dist.swap", shards=self._num_shards)

    def close(self) -> None:
        """Stop the workers and unlink every shard segment."""
        if self._out is not None:
            for ctrl in self._ctrl:
                ctrl.put(("stop",))
            for process in self._processes:
                process.join(timeout=10)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                    process.join(timeout=5)
            self._processes = []
            self._out = None
        for store in self._stores:
            store.close()

    def __enter__(self) -> "DistWalkEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass


def run_walks_dist(
    graph: CSRGraph,
    spec: WalkSpec,
    queries: Sequence[Query],
    seed: int = 0,
    stats: EngineStats | None = None,
    shards: int | None = None,
    sampler: str = "default",
) -> WalkResults:
    """One-shot distributed execution (``--engine dist``).

    Spins the shard workers up and down around a single batch;
    long-lived callers should hold a :class:`DistWalkEngine` so
    partitioning and worker start-up amortize across requests.
    """
    with DistWalkEngine(graph, spec, shards=shards, sampler=sampler) as engine:
        return engine.run(queries, seed=seed, stats=stats)
