"""Graph partitioning and per-shard shared-memory stores.

A shard owns a subset of vertices (and exactly their outgoing edge
rows).  Its shared segment holds three kinds of arrays:

* **local per-edge data** — the owned rows of ``col``/``weights``/
  ``edge_types``, concatenated in ascending vertex order, plus the
  owned slices of per-edge kernel state (alias slots, ITS CDF rows).
  This is the memory that actually scales down with the shard count.
* **replicated per-vertex data** — the global ``degrees`` array, the
  owner map, and per-vertex kernel state (ITS row totals, hybrid
  strategy codes, hub-bitmap ranks).  O(|V|) per shard, the standard
  edge-cut trade: any shard may need another shard's *degree* (the
  dangling check, Node2Vec's ``deg(prev)`` accounting) but never its
  edge list.
* **replicated probe structures** — the sorted global edge-key array
  (and hub bitmaps) behind second-order adjacency probes, which ask
  about arbitrary ``(prev, candidate)`` pairs regardless of ownership.

:class:`ShardGraphView` presents the shard to the vectorized sampling
kernels through the same attribute surface as a :class:`CSRGraph` —
the kernels only ever index ``row_ptr``/``col`` at a walker's *current*
vertex, which the routing layer guarantees is shard-owned, so a full
local CSR (with a dense |V|+1 row-pointer array of mostly-foreign
offsets) is never materialized.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.parallel.planner import QueryCostModel, plan_shards
from repro.parallel.shared_graph import KERNEL_PREFIX, SharedArrayStore
from repro.walks.base import WalkSpec

#: Keys the shard store uses for its graph-side arrays.
_OWNER_KEY = "dist:owner"
_DEGREES_KEY = "dist:degrees"
_ROW_START_KEY = "dist:row_start"
_COL_KEY = "dist:col"
_WEIGHTS_KEY = "dist:weights"
_EDGE_TYPES_KEY = "dist:edge_types"

#: Kernel state arrays aligned with the global CSR edge list — these are
#: sliced to the shard's owned edge positions.  Everything else a kernel
#: exports (per-vertex maps, the sorted global edge keys, hub bitmaps)
#: is consulted for arbitrary vertices during sampling and replicates.
_PER_EDGE_STATE = frozenset({"alias_prob", "alias_index", "its_cdf"})


class ShardGraphView:
    """Duck-typed graph facade a shard's sampling kernels run against.

    ``row_ptr`` maps an *owned* vertex to its row's offset in the local
    ``col``/``weights``/``edge_types`` arrays; non-owned entries hold an
    out-of-range poison value so an ownership bug fails with an index
    error instead of silently sampling a foreign row.  ``degrees()`` and
    ``num_vertices`` are global — the kernels consult them for previous
    vertices a walker carried across a shard boundary.
    """

    def __init__(
        self,
        num_vertices: int,
        row_start: np.ndarray,
        col: np.ndarray,
        weights: np.ndarray | None,
        edge_types: np.ndarray | None,
        degrees: np.ndarray,
    ) -> None:
        self.num_vertices = int(num_vertices)
        self.row_ptr = row_start
        self.col = col
        self.weights = weights
        self.edge_types = edge_types
        self.is_weighted = weights is not None
        self._degrees = degrees

    def degrees(self) -> np.ndarray:
        return self._degrees


def partition_vertices(graph: CSRGraph, spec: WalkSpec, num_shards: int) -> np.ndarray:
    """Owner map: ``owner[v]`` is the shard whose segment holds row ``v``.

    Reuses the parallel planner's degree-aware cost model — a vertex's
    expected walker load (hops a walk starting there would make) stands
    in for the row's routing traffic, so heavy rows spread across shards
    instead of clustering by vertex id.  Deterministic for a given
    ``(graph, spec, num_shards)``; correctness never depends on the
    split, only forwarding volume does.
    """
    costs = QueryCostModel(graph, spec).costs(
        np.arange(graph.num_vertices, dtype=np.int64)
    )
    owner = np.zeros(graph.num_vertices, dtype=np.int64)
    for shard, members in enumerate(plan_shards(costs, num_shards)):
        owner[members] = shard
    return owner


def _owned_edge_positions(
    graph: CSRGraph, owned: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(positions, row_starts)`` of the owned rows' edges.

    ``positions`` indexes the global CSR edge arrays, concatenating the
    owned rows in ascending vertex order; ``row_starts`` is each owned
    row's offset in that concatenation.
    """
    degrees = graph.degrees()[owned].astype(np.int64)
    ends = np.cumsum(degrees)
    row_starts = ends - degrees
    total = int(ends[-1]) if degrees.size else 0
    within = np.arange(total, dtype=np.int64) - np.repeat(row_starts, degrees)
    positions = np.repeat(graph.row_ptr[owned], degrees) + within
    return positions, row_starts


def build_shard_stores(
    graph: CSRGraph,
    kernel_arrays: dict[str, np.ndarray],
    owner: np.ndarray,
    num_shards: int,
) -> list[SharedArrayStore]:
    """One shared segment per shard: local edge data + replicated state.

    Either every store is created and returned, or none survive: a
    failure partway through closes (and unlinks) the segments already
    created, so a crashed engine bring-up cannot strand earlier shards'
    segments in ``/dev/shm`` (RW103 — same audit as
    :meth:`SharedArrayStore.create` applies per segment).
    """
    degrees = graph.degrees().astype(np.int64)
    stores: list[SharedArrayStore] = []
    try:
        for shard in range(num_shards):
            owned = np.nonzero(owner == shard)[0]
            positions, row_starts = _owned_edge_positions(graph, owned)
            # Poison non-owned entries past the local edge arrays so a
            # routing bug raises IndexError instead of reading a wrong row.
            row_start = np.full(graph.num_vertices, positions.size, dtype=np.int64)
            row_start[owned] = row_starts
            arrays: dict[str, np.ndarray] = {
                _OWNER_KEY: owner,
                _DEGREES_KEY: degrees,
                _ROW_START_KEY: row_start,
                _COL_KEY: graph.col[positions],
            }
            if graph.weights is not None:
                arrays[_WEIGHTS_KEY] = graph.weights[positions]
            if graph.edge_types is not None:
                arrays[_EDGE_TYPES_KEY] = graph.edge_types[positions]
            for name, array in kernel_arrays.items():
                if name in _PER_EDGE_STATE:
                    arrays[KERNEL_PREFIX + name] = array[positions]
                else:
                    arrays[KERNEL_PREFIX + name] = array
            stores.append(SharedArrayStore.create(arrays, graph_name=graph.name))
    except BaseException:
        for store in stores:
            store.close()
        raise
    return stores


def shard_view_from_store(
    store: SharedArrayStore,
) -> tuple[ShardGraphView, np.ndarray]:
    """Rebuild ``(view, owner_map)`` from a shard store's zero-copy views."""
    arrays = store.arrays()
    owner = arrays[_OWNER_KEY]
    view = ShardGraphView(
        num_vertices=owner.size,
        row_start=arrays[_ROW_START_KEY],
        col=arrays[_COL_KEY],
        weights=arrays.get(_WEIGHTS_KEY),
        edge_types=arrays.get(_EDGE_TYPES_KEY),
        degrees=arrays[_DEGREES_KEY],
    )
    return view, owner
