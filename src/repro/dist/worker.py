"""Shard worker process: local supersteps + walker forwarding.

Each worker owns one graph shard (attached zero-copy from its shared
segment) and holds the *resident* walkers — those whose current vertex
the shard owns.  A run proceeds in parent-coordinated supersteps: on
every ``("step", k)`` control message the worker advances all residents
one hop with the same vectorized kernel path as the batch engine, then
exchanges departures with every peer shard through the per-pair queues.

The exchange is lockstep and therefore deadlock-free: each step, each
worker sends exactly one (possibly empty) walker batch to every peer,
then receives exactly one batch from every peer, always in ascending
shard order.  ``multiprocessing.Queue`` puts never block (a feeder
thread drains them), so the symmetric send-all-then-receive-all pattern
cannot cycle.

Bit-identity with :func:`repro.walks.batch.run_walks_batch` rests on two
facts.  First, every per-walker random draw in the vectorized kernels
consumes only that walker's own splitmix64 substream, in an order fixed
by the walker's own trajectory — never by which other walkers share the
frontier.  Second, a forwarded walker carries its raw substream state
``(query_id, step, vertex, rng state)`` and the receiving shard resumes
it via :meth:`QueryStreams.from_states`, so the draw sequence continues
exactly where it left off.  Shard count and routing interleave therefore
cannot change any path or any counter.
"""

from __future__ import annotations

import os
import traceback

import numpy as np

from repro.dist.shard import shard_view_from_store
from repro.parallel.shared_graph import SharedArrayStore, kernel_state_from_store
from repro.parallel.worker import STAT_FIELDS
from repro.sampling.hybrid import make_walk_kernel
from repro.sampling.vectorized import QueryStreams

#: Indices into the per-run stat-counter vector, aligned with STAT_FIELDS.
(_PROPOSALS, _READS, _DANGLING, _EARLY, _PROBABILISTIC, _LENGTH) = range(
    len(STAT_FIELDS)
)


def _empty_walkers() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    return (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.uint64),
    )


class _ShardState:
    """Everything one shard worker holds between control messages."""

    def __init__(self, shard_id, handle, spec, sampler_mode, send_queues, recv_queues):
        self._shard_id = shard_id
        self._spec = spec
        self._sampler_mode = sampler_mode
        self._send = send_queues
        self._recv = recv_queues
        self._peers = sorted(send_queues)
        self._store: SharedArrayStore | None = None
        self._view = None
        self._owner = None
        self._kernel = None
        self.adopt(handle)
        self._reset_run()

    def adopt(self, handle) -> None:
        """Attach a (new) shard segment; swap-safe and leak-safe.

        If rebuilding the view or kernel fails after the segment mapped,
        the attach is closed before the error propagates — the worker
        must never exit holding a mapping the parent cannot see
        (satellite audit of the shared-segment handoff).
        """
        store = SharedArrayStore.attach(handle, untrack=False)
        try:
            view, owner = shard_view_from_store(store)
            kernel = make_walk_kernel(self._spec.make_sampler(), self._sampler_mode)
            kernel.load_state(kernel_state_from_store(store))
        except BaseException:
            store.close()
            raise
        old_store = self._store
        self._store = store
        self._view = view
        self._owner = owner
        self._kernel = kernel
        if old_store is not None:
            old_store.close()

    def _reset_run(self) -> None:
        (
            self._positions,
            self._current,
            self._previous,
            self._states,
        ) = _empty_walkers()
        self._log_pos: list[np.ndarray] = []
        self._log_step: list[np.ndarray] = []
        self._log_vert: list[np.ndarray] = []
        self._counts = np.zeros(len(STAT_FIELDS), dtype=np.int64)

    def start_run(self, positions, vertices, states) -> None:
        self._reset_run()
        self._positions = np.ascontiguousarray(positions, dtype=np.int64)
        self._current = np.ascontiguousarray(vertices, dtype=np.int64)
        self._previous = np.full(self._current.size, -1, dtype=np.int64)
        self._states = np.ascontiguousarray(states, dtype=np.uint64)

    def superstep(self, step: int) -> tuple[int, int, int]:
        """One frontier hop + peer exchange; ``(alive, forwarded, processed)``.

        The per-walker order of operations — dangling check, kernel
        sample, early termination, advance, teleport draw — mirrors
        ``run_walks_batch_arrays`` exactly; only the bookkeeping differs
        (hop logs instead of a dense path matrix, since the parent owns
        the final assembly).
        """
        spec = self._spec
        view = self._view
        processed = int(self._current.size)
        streams = QueryStreams.from_states(self._states)
        frontier = np.arange(self._current.size, dtype=np.int64)

        degrees = view.degrees()
        dangling = degrees[self._current[frontier]] == 0
        if dangling.any():
            self._counts[_DANGLING] += int(np.count_nonzero(dangling))
            frontier = frontier[~dangling]

        if frontier.size:
            prev_arg = (
                self._previous[frontier]
                if spec.needs_prev_vertex
                else np.full(frontier.size, -1, dtype=np.int64)
            )
            batch = self._kernel.sample(
                view,
                self._current[frontier],
                prev_arg,
                spec.admissible_type(step),
                streams,
                frontier,
            )
            self._counts[_PROPOSALS] += batch.proposals
            self._counts[_READS] += batch.neighbor_reads

            terminated = batch.choice < 0
            if terminated.any():
                self._counts[_EARLY] += int(np.count_nonzero(terminated))
                frontier = frontier[~terminated]
            choice = batch.choice[batch.choice >= 0]

            if frontier.size:
                next_vertex = view.col[view.row_ptr[self._current[frontier]] + choice]
                self._previous[frontier] = self._current[frontier]
                self._current[frontier] = next_vertex
                self._log_pos.append(self._positions[frontier].copy())
                self._log_step.append(np.full(frontier.size, step, dtype=np.int64))
                self._log_vert.append(next_vertex.copy())

                teleport = spec.termination_probability(step)
                if teleport > 0.0:
                    stop = streams.uniforms(frontier) < teleport
                    if stop.any():
                        self._counts[_PROBABILISTIC] += int(np.count_nonzero(stop))
                        frontier = frontier[~stop]

        forwarded = self._exchange(frontier)
        return int(self._current.size), forwarded, processed

    def _exchange(self, survivors: np.ndarray) -> int:
        """Route survivors by next-vertex owner; merge in immigrants.

        Send-all before receive-all, peers in ascending shard order on
        both sides, one message per peer per step even when empty — the
        lockstep contract the module docstring relies on.
        """
        next_owner = (
            self._owner[self._current[survivors]]
            if survivors.size
            else np.empty(0, dtype=np.int64)
        )
        forwarded = 0
        for peer in self._peers:
            departing = survivors[next_owner == peer]
            self._send[peer].put(
                (
                    self._positions[departing],
                    self._current[departing],
                    self._previous[departing],
                    self._states[departing],
                )
            )
            forwarded += int(departing.size)
        staying = survivors[next_owner == self._shard_id]
        parts = [
            (
                self._positions[staying],
                self._current[staying],
                self._previous[staying],
                self._states[staying],
            )
        ]
        for peer in self._peers:
            parts.append(self._recv[peer].get())
        self._positions = np.concatenate([part[0] for part in parts])
        self._current = np.concatenate([part[1] for part in parts])
        self._previous = np.concatenate([part[2] for part in parts])
        self._states = np.concatenate([part[3] for part in parts])
        return forwarded

    def collect(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Drain this run's hop logs and counters; reset for the next run.

        Walkers still resident when the parent stops stepping ran to
        ``max_length`` — the batch engine's length-termination bucket.
        """
        self._counts[_LENGTH] += int(self._positions.size)
        if self._log_pos:
            logs = (
                np.concatenate(self._log_pos),
                np.concatenate(self._log_step),
                np.concatenate(self._log_vert),
            )
        else:
            logs = (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        counts = self._counts.copy()
        self._reset_run()
        return logs[0], logs[1], logs[2], counts

    def close(self) -> None:
        if self._store is not None:
            self._store.close()
            self._store = None


def shard_worker_main(
    shard_id, handle, spec, sampler_mode, ctrl, out, send_queues, recv_queues
) -> None:
    """Process entry point: serve control messages until ``("stop",)``.

    Every failure — including during initialization — is reported to the
    parent as an ``("error", shard_id, summary, traceback)`` message so
    the engine can raise with the worker's real stack instead of hanging
    on a reply that will never come.
    """
    state = None
    try:
        state = _ShardState(
            shard_id, handle, spec, sampler_mode, send_queues, recv_queues
        )
        out.put(("ready", shard_id))
        while True:
            message = ctrl.get()
            kind = message[0]
            if kind == "run":
                state.start_run(message[1], message[2], message[3])
            elif kind == "step":
                alive, forwarded, processed = state.superstep(message[1])
                out.put(("stepped", shard_id, alive, forwarded, processed))
            elif kind == "collect":
                positions, steps, vertices, counts = state.collect()
                out.put(("collected", shard_id, positions, steps, vertices, counts))
            elif kind == "adopt":
                state.adopt(message[1])
                out.put(("adopted", shard_id, os.getpid()))
            elif kind == "stop":
                return
            else:
                raise ValueError(f"unknown dist control message {kind!r}")
    except BaseException as error:
        out.put(
            (
                "error",
                shard_id,
                f"{type(error).__name__}: {error}",
                traceback.format_exc(),
            )
        )
    finally:
        if state is not None:
            state.close()
