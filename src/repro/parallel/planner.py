"""Degree-aware shard planning for the parallel walk engine.

Splitting a query batch into equal-*count* shards balances nothing on
heavy-tailed graphs: RMAT workloads mix dangling starts (zero hops) with
walks that run the full length, so a worker that happens to draw the
long walks straggles while the rest idle.  The planner instead estimates
each query's expected hop count from the graph's degree structure and
the spec's termination probabilities, then packs shards to equal
expected *cost*, heaviest queries first (a vectorized folded round-robin
with the balance character of longest-processing-time greedy).

Correctness never depends on the plan: every query's randomness is keyed
by ``SeedSequence((seed, query_id))``, so results are bit-identical for
any shard assignment — the planner only shapes wall-clock balance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WalkConfigError
from repro.graph.csr import CSRGraph
from repro.walks.base import WalkSpec

#: Fixed per-query overhead (stream setup, result assembly) in units of
#: one expected hop; keeps zero-hop queries from all landing in one shard.
_BASE_QUERY_COST = 1.0


class QueryCostModel:
    """Expected cost (≈ hops) of a query, from degree structure alone.

    The model follows the walk's survival chain: a dangling start makes
    zero hops; otherwise hop 1 is certain, hop 2 happens unless the spec
    teleports after hop 1 or the first hop landed on a dangling vertex
    (probability: the dangling fraction of the *start's own* neighbor
    list — the degree-aware part), and each later hop continues with the
    spec's per-step survival times the graph-wide mean dangling fraction
    over edge endpoints.  Only a balance heuristic, so approximations
    (uniform first-hop choice, mean-field tail) are fine.

    Construction pays the O(|E|) graph pass and the O(max_length)
    survival sum once; :meth:`costs` is then O(queries) indexing — the
    parallel engine builds one model per engine and reuses it every run,
    keeping the planner off the per-batch critical path.
    """

    def __init__(self, graph: CSRGraph, spec: WalkSpec) -> None:
        degrees = graph.degrees()
        dangling = degrees == 0
        self._dangling = dangling

        if graph.num_edges:
            edge_dangling = dangling[graph.col].astype(np.float64)
            # Prefix sums sidestep reduceat's segment-boundary corner
            # cases (empty neighbor lists, trailing dangling vertices).
            prefix = np.concatenate([[0.0], np.cumsum(edge_dangling)])
            sums = prefix[graph.row_ptr[1:]] - prefix[graph.row_ptr[:-1]]
            neighbor_dangling_frac = np.where(
                degrees > 0, sums / np.maximum(degrees, 1), 0.0
            )
            mean_edge_dangling = float(edge_dangling.mean())
        else:
            neighbor_dangling_frac = np.zeros(graph.num_vertices, dtype=np.float64)
            mean_edge_dangling = 0.0

        # Per-start probability of making hop 2 given hop 1 was made.
        self._first_continue = (1.0 - spec.termination_probability(0)) * (
            1.0 - neighbor_dangling_frac
        )
        # Expected hops beyond hop 2, relative to reaching hop 2:
        #   P(hop k+1) = P(hop k) * (1 - t(k-1)) * (1 - mean_edge_dangling)
        tail = 0.0
        survive = 1.0
        for step in range(1, spec.max_length - 1):
            survive *= (1.0 - spec.termination_probability(step)) * (
                1.0 - mean_edge_dangling
            )
            tail += survive
            if survive < 1e-6:
                break
        self._tail = tail

    def costs(self, start_vertices: np.ndarray) -> np.ndarray:
        """Expected cost of a query starting at each given vertex."""
        starts = np.asarray(start_vertices, dtype=np.int64)
        live = ~self._dangling[starts]
        expected_hops = np.where(
            live, 1.0 + self._first_continue[starts] * (1.0 + self._tail), 0.0
        )
        return _BASE_QUERY_COST + expected_hops


def expected_query_costs(
    graph: CSRGraph, spec: WalkSpec, start_vertices: np.ndarray
) -> np.ndarray:
    """One-shot convenience over :class:`QueryCostModel`."""
    return QueryCostModel(graph, spec).costs(start_vertices)


def plan_shards(costs: np.ndarray, num_shards: int) -> list[np.ndarray]:
    """Partition query positions into ``num_shards`` cost-balanced shards.

    Heaviest-first folded round-robin ("snake" packing): queries are
    sorted by descending cost and dealt out in the shard pattern
    ``0..S-1, S-1..0, 0..S-1, ...`` — the fold compensates each pass's
    ordering bias, so shard loads track the heavy tail about as well as
    longest-processing-time greedy while staying fully vectorized (the
    planner sits on the parent's critical path before any worker can
    start, so an O(n) Python heap loop here is wall-clock nobody gets
    back).  Deterministic: stable sort, fixed pattern.  Returns ascending
    position arrays; shards may be empty when there are fewer queries
    than shards.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if num_shards < 1:
        raise WalkConfigError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards == 1:
        return [np.arange(costs.size, dtype=np.int64)]
    order = np.argsort(-costs, kind="stable")
    pattern = np.concatenate([
        np.arange(num_shards), np.arange(num_shards - 1, -1, -1)
    ])
    repeats = -(-costs.size // pattern.size)  # ceil division
    shard_of = np.empty(costs.size, dtype=np.int64)
    shard_of[order] = np.tile(pattern, repeats)[: costs.size]
    return [np.nonzero(shard_of == shard)[0] for shard in range(num_shards)]
