"""Sharded multicore walk execution over shared-memory graphs.

The software analogue of RidgeWalker's pipeline replication: the
vectorized batch engine on every core at once, fed from one
shared-memory CSR graph, balanced by a degree-aware shard planner, and
merged deterministically (bit-identical results for any worker count).
"""

from repro.parallel.engine import (
    WORKER_BACKENDS,
    ParallelWalkEngine,
    default_workers,
    run_walks_parallel,
    validate_worker_backend,
)
from repro.parallel.planner import QueryCostModel, expected_query_costs, plan_shards
from repro.parallel.shared_graph import (
    SharedArrayStore,
    SharedStoreHandle,
    graph_arrays,
    graph_from_store,
)

__all__ = [
    "ParallelWalkEngine",
    "QueryCostModel",
    "WORKER_BACKENDS",
    "validate_worker_backend",
    "SharedArrayStore",
    "SharedStoreHandle",
    "default_workers",
    "expected_query_costs",
    "graph_arrays",
    "graph_from_store",
    "plan_shards",
    "run_walks_parallel",
]
