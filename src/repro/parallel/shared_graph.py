"""Shared-memory backing for CSR graphs and prepared kernel state.

The sharded parallel engine runs one batch-engine instance per worker
process.  Copying a multi-hundred-megabyte CSR graph into every worker —
or rebuilding alias tables and edge keys per worker — would dwarf the
walk time, so the parent serializes every array exactly once into one
``multiprocessing.shared_memory`` segment and hands workers a small
picklable :class:`SharedStoreHandle`.  Workers attach zero-copy
read-only views; the graph is built and prepared once, period.

Layout: a single shared segment holding all arrays back to back at
64-byte-aligned offsets, described by per-array ``(name, offset, shape,
dtype)`` records in the handle.  One segment (rather than one per array)
keeps the attach/cleanup surface minimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

_ALIGN = 64

#: Key prefixes separating graph arrays from kernel state in one store.
GRAPH_PREFIX = "graph:"
KERNEL_PREFIX = "kernel:"

_GRAPH_FIELDS = ("row_ptr", "col", "weights", "edge_types", "vertex_types")


@dataclass(frozen=True)
class _ArrayRecord:
    """Where one array lives inside the shared segment."""

    name: str
    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedStoreHandle:
    """Picklable description of a :class:`SharedArrayStore` segment."""

    segment_name: str
    records: tuple[_ArrayRecord, ...]
    graph_name: str = "graph"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrayStore:
    """A named set of numpy arrays in one shared-memory segment.

    The creating process owns the segment (``owner=True``) and must call
    :meth:`close` — unlinking the segment — when the worker pool is done;
    attaching processes only detach.  Arrays returned by :meth:`arrays`
    are read-only views valid until :meth:`close`.
    """

    def __init__(self, shm: shared_memory.SharedMemory, handle: SharedStoreHandle,
                 owner: bool) -> None:
        self._shm = shm
        self._handle = handle
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray], graph_name: str = "graph") -> "SharedArrayStore":
        """Copy ``arrays`` into a fresh shared segment (the one-time cost)."""
        records = []
        offset = 0
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset = _aligned(offset)
            records.append(_ArrayRecord(name, offset, array.shape, array.dtype.str))
            offset += array.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        try:
            for record, array in zip(records, arrays.values()):
                array = np.ascontiguousarray(array)
                view = np.ndarray(record.shape, dtype=record.dtype,
                                  buffer=shm.buf, offset=record.offset)
                view[...] = array
            handle = SharedStoreHandle(shm.name, tuple(records), graph_name)
            return cls(shm, handle, owner=True)
        except BaseException:
            # Until the owning wrapper exists, nothing else can unlink
            # the segment — a failure here (a dtype that won't cast, a
            # caller mapping that lies about its values) would leak it
            # in /dev/shm until reboot (RW103).
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            raise

    @classmethod
    def attach(cls, handle: SharedStoreHandle, untrack: bool = False) -> "SharedArrayStore":
        """Map an existing segment (worker side) without taking ownership.

        ``untrack`` matters for *spawned* workers, whose private resource
        tracker would otherwise treat the attached segment as their leak
        and unlink it when the worker exits (Python < 3.13 has no
        ``track=False``).  *Forked* workers share the parent's tracker —
        the segment is registered there exactly once by ``create`` — so
        they must leave the registration alone (``untrack=False``), or
        the parent's eventual unlink double-unregisters.
        """
        shm = shared_memory.SharedMemory(name=handle.segment_name)
        if untrack:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker implementation detail
                pass
        return cls(shm, handle, owner=False)

    @property
    def handle(self) -> SharedStoreHandle:
        return self._handle

    def arrays(self) -> dict[str, np.ndarray]:
        """Read-only zero-copy views of every stored array."""
        if self._closed:
            raise GraphError("shared array store is closed")
        out: dict[str, np.ndarray] = {}
        for record in self._handle.records:
            view = np.ndarray(record.shape, dtype=record.dtype, buffer=self._shm.buf,
                              offset=record.offset)
            view.setflags(write=False)
            out[record.name] = view
        return out

    def close(self) -> None:
        """Detach; the owning process also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def __enter__(self) -> "SharedArrayStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass


def graph_arrays(graph: CSRGraph) -> dict[str, np.ndarray]:
    """The graph's defining arrays, keyed for a shared store."""
    out = {}
    for name in _GRAPH_FIELDS:
        array = getattr(graph, name)
        if array is not None:
            out[GRAPH_PREFIX + name] = array
    return out


def graph_from_store(store: SharedArrayStore) -> CSRGraph:
    """Rebuild the CSR graph from a store's zero-copy views.

    ``CSRGraph`` keeps already-contiguous arrays of the right dtype as-is,
    so no copy happens; the construction cost is one validation pass per
    worker process.
    """
    arrays = store.arrays()
    fields = {
        name: arrays[GRAPH_PREFIX + name]
        for name in _GRAPH_FIELDS
        if GRAPH_PREFIX + name in arrays
    }
    return CSRGraph(name=store.handle.graph_name, **fields)


def kernel_state_from_store(store: SharedArrayStore) -> dict[str, np.ndarray]:
    """The prepared-kernel arrays a store carries (possibly empty)."""
    return {
        name[len(KERNEL_PREFIX):]: array
        for name, array in store.arrays().items()
        if name.startswith(KERNEL_PREFIX)
    }
