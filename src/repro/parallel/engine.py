"""Sharded multicore walk engine: one batch engine per core.

RidgeWalker scales by replicating perfectly pipelined walk pipelines
against HBM channels; this is the software analogue — the vectorized
batch engine (~20x the reference loop on one core) replicated across a
persistent ``multiprocessing`` worker pool, all workers sampling against
one shared-memory CSR graph.  The parent builds and prepares everything
exactly once (graph arrays, alias tables, edge keys), broadcasts it
through :mod:`repro.parallel.shared_graph`, shards each query batch with
the degree-aware cost planner, and merges worker results back into query
order.

Determinism is absolute, not best-effort: every query's randomness is
keyed by ``SeedSequence((seed, query_id))`` independently of its shard,
and the merge reassembles paths by original batch position — so
``WalkResults`` and ``EngineStats`` are bit-identical for any
``workers`` count and any query order.  Tests prove it.

Use :class:`ParallelWalkEngine` directly to amortize pool + shared-graph
setup across many batches (the serving pattern), or the one-shot
:func:`run_walks_parallel` wrapper (the ``--engine parallel`` path).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import Sequence

import numpy as np

from repro.errors import GraphError, WalkConfigError
from repro.graph.csr import CSRGraph
from repro.obs.trace import active as _active_tracer
from repro.parallel import worker as _worker
from repro.parallel.planner import QueryCostModel, plan_shards
from repro.parallel.shared_graph import KERNEL_PREFIX, SharedArrayStore, graph_arrays
from repro.sampling.hybrid import make_walk_kernel, validate_sampler_mode
from repro.walks.base import Query, WalkResults, WalkSpec, split_path_buffer
from repro.walks.batch import check_batch_spec
from repro.walks.jit import NUMBA_AVAILABLE, warn_numba_fallback
from repro.walks.reference import EngineStats

#: Per-worker shard cores the pool can run (``backend=`` option).
WORKER_BACKENDS = ("batch", "jit")


def validate_worker_backend(backend: str) -> str:
    """Reject unknown worker backends, naming the valid choices."""
    if backend not in WORKER_BACKENDS:
        raise WalkConfigError(
            f"unknown worker backend {backend!r}; expected one of "
            f"{list(WORKER_BACKENDS)}"
        )
    return backend


def default_workers() -> int:
    """Worker count when none is given: every core actually available.

    CPU affinity masks and container quotas make this differ from
    ``os.cpu_count()`` — a 2-CPU cgroup on a 16-core host should get 2
    workers, not 16 oversubscribed ones.  The parallel benchmark gates
    its speedup requirement on the same number.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # platforms without affinity APIs
        return max(1, os.cpu_count() or 1)


def _pick_context() -> multiprocessing.context.BaseContext:
    """Fork on Linux (cheap start, inherited modules); the platform
    default elsewhere — macOS offers fork but deliberately defaults to
    spawn because forking a process with framework threads is unsafe.
    The shared-memory design works under both start methods."""
    if sys.platform == "linux":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ParallelWalkEngine:
    """A persistent pool of batch-engine workers over one shared graph.

    Construction pays the one-time costs: kernel preparation (alias
    tables, edge keys), the shared-memory copy of graph + kernel state,
    and pool start-up.  Every :meth:`run` after that only ships shard
    descriptors (ids, starts, seed) out and dense path matrices back.
    Close the engine (or use it as a context manager) to tear down the
    pool and unlink the shared segment.
    """

    def __init__(
        self,
        graph: CSRGraph,
        spec: WalkSpec,
        workers: int | None = None,
        shards_per_worker: int = 4,
        sampler: str = "default",
        backend: str = "batch",
    ) -> None:
        check_batch_spec(spec)
        validate_sampler_mode(sampler)
        validate_worker_backend(backend)
        if backend == "jit" and not NUMBA_AVAILABLE:
            # Same degradation contract as --engine jit: results are
            # bit-identical either way, so warn once and run batch cores.
            warn_numba_fallback()
            backend = "batch"
        if workers is not None and workers < 1:
            raise WalkConfigError(f"workers must be >= 1, got {workers}")
        if shards_per_worker < 1:
            raise WalkConfigError(
                f"shards_per_worker must be >= 1, got {shards_per_worker}"
            )
        self._graph = graph
        self._spec = spec
        self._sampler_mode = sampler
        self._backend = backend
        self._workers = workers or default_workers()
        # Oversharding streams results back while later shards still
        # compute, hiding the parent's merge cost behind worker time; it
        # also lets a fast worker steal queued shards from a slow one.
        self._shards_per_worker = shards_per_worker
        self._cost_model = QueryCostModel(graph, spec)

        kernel = make_walk_kernel(spec.make_sampler(), sampler)
        kernel.prepare(graph)
        self._store = self._create_store(graph, kernel.state_arrays())
        self._pool = None
        try:
            context = _pick_context()
            # Forked workers share the parent's resource tracker and
            # must leave the segment registration alone; spawned ones
            # have their own tracker and must untrack the attach.
            self._untrack_attach = context.get_start_method() != "fork"
            # One party per worker: pins graph-swap broadcasts so every
            # worker adopts the new segment exactly once (see
            # worker.adopt_store).
            self._swap_barrier = context.Barrier(self._workers)
            self._pool = context.Pool(
                processes=self._workers,
                initializer=_worker.init_worker,
                initargs=(self._store.handle, spec, self._untrack_attach,
                          self._swap_barrier, sampler, backend),
            )
        except Exception:
            self._store.close()
            raise

    @staticmethod
    def _create_store(graph: CSRGraph, kernel_arrays: dict) -> SharedArrayStore:
        shared = dict(graph_arrays(graph))
        for name, array in kernel_arrays.items():
            shared[KERNEL_PREFIX + name] = array
        return SharedArrayStore.create(shared, graph_name=graph.name)

    @property
    def workers(self) -> int:
        return self._workers

    def run(
        self,
        queries: Sequence[Query],
        seed: int = 0,
        stats: EngineStats | None = None,
    ) -> WalkResults:
        """Execute ``queries``, bit-identical to ``run_walks_batch``."""
        if self._pool is None:
            raise WalkConfigError("parallel engine is closed")
        results = WalkResults()
        num_queries = len(queries)
        if num_queries == 0:
            return results
        query_ids = np.fromiter(
            (query.query_id for query in queries), dtype=np.int64, count=num_queries
        )
        starts = np.fromiter(
            (query.start_vertex for query in queries), dtype=np.int64, count=num_queries
        )
        # Fail fast in the parent, before work is sharded out.
        if starts.min() < 0 or starts.max() >= self._graph.num_vertices:
            bad = int(starts[(starts < 0) | (starts >= self._graph.num_vertices)][0])
            raise GraphError(
                f"vertex {bad} out of range for graph with "
                f"{self._graph.num_vertices} vertices"
            )

        tracer = _active_tracer()
        if tracer is not None:
            _t_plan = tracer.begin()
        costs = self._cost_model.costs(starts)
        shards = plan_shards(costs, self._workers * self._shards_per_worker)
        tasks = [
            (positions, query_ids[positions], starts[positions], seed)
            for positions in shards
            if positions.size
        ]
        if tracer is not None:
            tracer.end(_t_plan, "parallel.plan", queries=num_queries,
                       shards=len(tasks))
            _t_dispatch = tracer.begin()

        # Stream the merge: shards arrive in completion order (the scatter
        # below is position-addressed, so arrival order cannot change the
        # result) and the parent reassembles each one while workers are
        # still computing the rest — merge cost hides behind compute.
        merged: list[np.ndarray | None] = [None] * num_queries
        merged_hops = np.zeros(num_queries, dtype=np.int64)
        counter_totals = np.zeros(len(_worker.STAT_FIELDS), dtype=np.int64)
        for positions, flat, hops, counts in self._pool.imap_unordered(
            _worker.run_shard, tasks
        ):
            if tracer is not None:
                tracer.instant("parallel.shard_merged", size=int(positions.size),
                               hops=int(hops.sum()))
            pieces = split_path_buffer(flat, hops + 1)
            for position, piece in zip(positions.tolist(), pieces):
                merged[position] = piece
            merged_hops[positions] = hops
            counter_totals += counts
        if tracer is not None:
            tracer.end(_t_dispatch, "parallel.dispatch", queries=num_queries,
                       shards=len(tasks), workers=self._workers)
        results.paths = merged
        results.total_steps = int(merged_hops.sum())

        if stats is not None:
            for name, value in zip(_worker.STAT_FIELDS, counter_totals):
                setattr(stats, name, getattr(stats, name) + int(value))
            stats.total_hops += int(merged_hops.sum())
            stats.per_query_hops.extend(int(h) for h in merged_hops)
        return results

    def swap_graph(
        self, graph: CSRGraph, kernel_arrays: dict | None = None
    ) -> None:
        """Point the live worker pool at a new graph version.

        The pool and its processes survive — only the shared-memory
        segment is replaced: the parent serializes the new graph (plus
        prepared kernel state) into a fresh segment, broadcasts one
        ``adopt_store`` task per worker (a barrier guarantees exactly-once
        delivery), then unlinks the old segment.  ``kernel_arrays`` —
        e.g. a dynamic snapshot's incrementally maintained state — skips
        the parent-side ``kernel.prepare`` pass entirely; pass ``None``
        to prepare from scratch.

        Must not be called concurrently with :meth:`run` (the serving
        layer serializes swaps onto epoch boundaries for exactly this
        reason).
        """
        if self._pool is None:
            raise WalkConfigError("parallel engine is closed")
        if graph.num_vertices != self._graph.num_vertices:
            # Shards planned against the old degree array would index out
            # of range; a changed vertex universe needs a new engine.
            raise WalkConfigError(
                f"cannot swap to a graph with {graph.num_vertices} vertices; "
                f"the engine was built for {self._graph.num_vertices}"
            )
        tracer = _active_tracer()
        if tracer is not None:
            _t_swap = tracer.begin()
        if kernel_arrays is None:
            kernel = make_walk_kernel(self._spec.make_sampler(), self._sampler_mode)
            kernel.prepare(graph)
            kernel_arrays = kernel.state_arrays()
        new_store = self._create_store(graph, kernel_arrays)
        try:
            tasks = [(new_store.handle, self._untrack_attach)] * self._workers
            pids = self._pool.map(_worker.adopt_store, tasks, chunksize=1)
            if len(set(pids)) != self._workers:  # pragma: no cover - barrier guards this
                raise WalkConfigError(
                    f"graph swap reached {len(set(pids))} of {self._workers} "
                    "workers"
                )
        except Exception:
            new_store.close()
            raise
        old_store = self._store
        self._store = new_store
        old_store.close()
        self._graph = graph
        self._cost_model = QueryCostModel(graph, self._spec)
        if tracer is not None:
            tracer.end(_t_swap, "parallel.swap", workers=self._workers)

    def close(self) -> None:
        """Stop the workers and release the shared segment."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        self._store.close()

    def __enter__(self) -> "ParallelWalkEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass


def run_walks_parallel(
    graph: CSRGraph,
    spec: WalkSpec,
    queries: Sequence[Query],
    seed: int = 0,
    stats: EngineStats | None = None,
    workers: int | None = None,
    sampler: str = "default",
    backend: str = "batch",
) -> WalkResults:
    """One-shot parallel execution (``--engine parallel``).

    Spins the pool up and down around a single batch; long-lived callers
    should hold a :class:`ParallelWalkEngine` instead so pool and
    shared-graph setup amortize across requests.  ``backend="jit"`` runs
    the fused jit kernels inside each worker (bit-identical results).
    """
    with ParallelWalkEngine(
        graph, spec, workers=workers, sampler=sampler, backend=backend
    ) as engine:
        return engine.run(queries, seed=seed, stats=stats)
