"""Worker-process side of the parallel walk engine.

Each pool worker attaches the shared-memory graph once at initialization
(zero-copy views), rebuilds its vectorized sampling kernel from the
broadcast prepared state — no per-worker alias-table or edge-key builds
— and then serves shard requests by running the batch engine's array
core.  Results travel back as dense matrices, not per-path objects, so
the pickling cost stays one buffer per shard.

Module-level functions + globals (rather than closures) keep the worker
entry points picklable under every multiprocessing start method.
"""

from __future__ import annotations

import os

import numpy as np

from repro.parallel.shared_graph import (
    SharedArrayStore,
    SharedStoreHandle,
    graph_from_store,
    kernel_state_from_store,
)
from repro.sampling.hybrid import make_walk_kernel
from repro.walks.base import compact_path_matrix
from repro.walks.batch import run_walks_batch_arrays
from repro.walks.jit import jit_state_from_kernel, run_walks_jit_arrays
from repro.walks.reference import EngineStats

#: Scalar EngineStats counters a worker reports back per shard, in order.
STAT_FIELDS = (
    "sampling_proposals",
    "neighbor_reads",
    "dangling_terminations",
    "early_terminations",
    "probabilistic_terminations",
    "length_terminations",
)

_STORE: SharedArrayStore | None = None
_GRAPH = None
_SPEC = None
_KERNEL = None
_SWAP_BARRIER = None
_SAMPLER_MODE = "default"
_BACKEND = "batch"
_JIT_STATE = None
_INIT_ERROR: BaseException | None = None


def init_worker(
    handle: SharedStoreHandle,
    spec,
    untrack_segment: bool = False,
    swap_barrier=None,
    sampler_mode: str = "default",
    backend: str = "batch",
) -> None:
    """Pool initializer: attach the shared graph and load kernel state.

    ``untrack_segment`` is True for spawned workers (private resource
    tracker) and False for forked ones (shared tracker) — see
    :meth:`SharedArrayStore.attach`.  ``swap_barrier`` (one party per
    worker) synchronizes :func:`adopt_store` broadcasts during graph
    swaps.  ``sampler_mode`` picks the kernel family (``"auto"`` =
    hybrid) — the parent broadcasts the prepared state either way, so
    workers only instantiate the matching shell and load it.
    ``backend`` picks each worker's per-shard core: the batch superstep
    engine or the fused jit kernels (bit-identical; the parent only
    requests ``"jit"`` when numba is importable).  The jit state is a
    zero-copy recast of the loaded kernel's arrays.

    Failures are *stashed*, never raised: ``multiprocessing.Pool``
    respawns any worker whose initializer raises, so an error here —
    a corrupt handle, a kernel state that will not load — would loop
    crash-and-respawn forever with the parent hung on its first task
    and each dead worker leaking its half-initialized segment attach.
    Instead the attach is closed, the error is recorded, and the first
    task dispatched to this worker (:func:`run_shard` /
    :func:`adopt_store`) re-raises it into the parent's result path.
    """
    global _STORE, _GRAPH, _SPEC, _KERNEL, _SWAP_BARRIER, _SAMPLER_MODE
    global _BACKEND, _JIT_STATE, _INIT_ERROR
    _INIT_ERROR = None
    store = None
    try:
        store = SharedArrayStore.attach(handle, untrack=untrack_segment)
        graph = graph_from_store(store)
        kernel = make_walk_kernel(spec.make_sampler(), sampler_mode)
        kernel.load_state(kernel_state_from_store(store))
        jit_state = (
            jit_state_from_kernel(graph, spec, kernel) if backend == "jit" else None
        )
    except BaseException as error:
        if store is not None:
            store.close()
        _INIT_ERROR = error
        # Even a failed worker must hold its barrier party: a graph-swap
        # broadcast waits on every worker, and a missing party would
        # hang the healthy ones instead of surfacing this error.
        _SWAP_BARRIER = swap_barrier
        return
    _STORE = store
    _GRAPH = graph
    _SPEC = spec
    _SAMPLER_MODE = sampler_mode
    _KERNEL = kernel
    _BACKEND = backend
    _JIT_STATE = jit_state
    _SWAP_BARRIER = swap_barrier


def _check_init() -> None:
    """Surface a stashed initializer failure on the first real task."""
    if _INIT_ERROR is not None:
        raise _INIT_ERROR


def adopt_store(task):
    """Swap this worker onto a new shared graph segment; returns its pid.

    The engine broadcasts exactly one adopt task per worker.  Waiting at
    the barrier *before* swapping pins every worker on one task each — a
    worker blocked in the barrier cannot pull a second task off the pool
    queue, so the broadcast cannot skip a worker.  The parent
    cross-checks the returned pids anyway.
    """
    handle, untrack = task
    global _STORE, _GRAPH, _KERNEL, _JIT_STATE
    if _SWAP_BARRIER is not None:
        _SWAP_BARRIER.wait()
    # After the barrier, not before: a worker that failed to initialize
    # still shows up for the rendezvous, then reports its error.
    _check_init()
    old_store = _STORE
    _STORE = SharedArrayStore.attach(handle, untrack=untrack)
    _GRAPH = graph_from_store(_STORE)
    kernel = make_walk_kernel(_SPEC.make_sampler(), _SAMPLER_MODE)
    kernel.load_state(kernel_state_from_store(_STORE))
    _KERNEL = kernel
    if _BACKEND == "jit":
        _JIT_STATE = jit_state_from_kernel(_GRAPH, _SPEC, kernel)
    if old_store is not None:
        old_store.close()
    return os.getpid()


def run_shard(task):
    """Run one shard; returns ``(positions, flat_paths, hops, stat_counts)``.

    ``task`` is ``(positions, query_ids, start_vertices, seed)``; the
    positions index the original query batch and ride through untouched
    so the parent can merge shards deterministically in query order.
    Paths are compacted worker-side (``compact_path_matrix``) so the
    padding of the superstep buffer never crosses the process boundary
    and the gather cost parallelizes across workers.
    """
    _check_init()
    positions, query_ids, starts, seed = task
    stats = EngineStats()
    if _BACKEND == "jit":
        paths, hops = run_walks_jit_arrays(
            _GRAPH, _SPEC, _JIT_STATE, starts, query_ids, seed=seed, stats=stats
        )
    else:
        paths, hops = run_walks_batch_arrays(
            _GRAPH, _SPEC, _KERNEL, starts, query_ids, seed=seed, stats=stats
        )
    flat, _ = compact_path_matrix(paths, hops)
    counts = np.array([getattr(stats, name) for name in STAT_FIELDS], dtype=np.int64)
    return positions, flat, hops, counts
