"""Analytical FPGA resource model — reproduces Table IV.

Composes per-component costs (calibrated against the paper's reported
utilization on the U55C) into whole-kernel estimates:

* two asynchronous access engines per pipeline (request/response proxies,
  BRAM metadata queue, transaction-id reorder buffer);
* one sampling unit per pipeline, whose cost depends on the Table I
  algorithm (alias units carry table-walk datapaths and extra DSPs for
  the second uniform; rejection units carry the adjacency-probe logic;
  reservoir units carry the weighted-key compare tree);
* one ThundeRiNG RNG pair per pipeline (DSP-based multiplier shared,
  per-stream scramblers in LUTs — the resource win of the shared-core
  construction);
* the zero-bubble scheduler: ``2*N*log2(N)`` dispatcher/merger units for
  the balancer plus the distribution tree and mergers (the paper reports
  the scheduler alone at ~1.8% of U55C LUTs, ~250 LUTs per unit);
* platform shell and HBM interconnect overhead.

The model is intentionally linear in the configuration — its purpose is
to reproduce the *ordering and rough magnitude* of Table IV and to let
ablations ask "what does doubling the pipelines cost", not to replace a
place-and-route report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ResourceModelError
from repro.resources.devices import ALVEO_U55C, DeviceSpec
from repro.walks.base import WalkSpec


@dataclass(frozen=True)
class ResourceVector:
    """LUT/REG/BRAM/DSP consumption of one component or design."""

    luts: int = 0
    registers: int = 0
    bram36: int = 0
    dsp: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            luts=self.luts + other.luts,
            registers=self.registers + other.registers,
            bram36=self.bram36 + other.bram36,
            dsp=self.dsp + other.dsp,
        )

    def scaled(self, factor: int) -> "ResourceVector":
        return ResourceVector(
            luts=self.luts * factor,
            registers=self.registers * factor,
            bram36=self.bram36 * factor,
            dsp=self.dsp * factor,
        )

    def utilization(self, device: DeviceSpec) -> dict[str, float]:
        """Fractions of the device consumed, per resource class."""
        return {
            "LUTs": self.luts / device.luts,
            "REGs": self.registers / device.registers,
            "BRAMs": self.bram36 / device.bram36,
            "DSPs": self.dsp / device.dsp,
        }

    def fits(self, device: DeviceSpec) -> bool:
        """Whether the design fits the device."""
        return all(value <= 1.0 for value in self.utilization(device).values())


# ---------------------------------------------------------------------------
# Component costs (calibrated on the paper's U55C utilization, Table IV)
# ---------------------------------------------------------------------------

#: One asynchronous access engine (Figure 6): proxies, metadata queue,
#: 64-id reorder buffer.
ACCESS_ENGINE = ResourceVector(luts=11_000, registers=10_000, bram36=8, dsp=0)

#: Per-pipeline sampling unit, by Table I algorithm.
SAMPLER_UNITS: dict[str, ResourceVector] = {
    "uniform": ResourceVector(luts=4_000, registers=4_500, bram36=0, dsp=0),
    "alias": ResourceVector(luts=19_800, registers=16_400, bram36=24, dsp=12),
    "rejection": ResourceVector(luts=22_000, registers=25_500, bram36=4, dsp=29),
    "reservoir": ResourceVector(luts=22_000, registers=25_500, bram36=20, dsp=29),
    "inverse-transform": ResourceVector(luts=9_000, registers=7_000, bram36=2, dsp=8),
}

#: ThundeRiNG RNG pair per pipeline (shared multiplier in DSPs).
RNG_UNIT = ResourceVector(luts=2_500, registers=3_000, bram36=0, dsp=8)

#: Per-pipeline share of scheduler FIFOs and recirculation buffering.
PIPELINE_BUFFERS = ResourceVector(luts=1_800, registers=2_200, bram36=4, dsp=0)

#: One dispatcher or merger unit (Algorithms VI.1/VI.2): ~150 LUTs, as
#: implied by the paper's "1.8% of LUTs" for the whole 16-wide scheduler
#: (159 units on the U55C's 1.3M-LUT fabric).
SCHEDULER_UNIT = ResourceVector(luts=150, registers=260, bram36=0, dsp=0)

#: Static platform shell, HBM switch and host interface.
SHELL = ResourceVector(luts=118_000, registers=135_000, bram36=80, dsp=64)

#: Per-algorithm control overhead (AXI4-Lite registers, teleport FSM...).
ALGORITHM_CONTROL: dict[str, ResourceVector] = {
    "URW": ResourceVector(),
    "PPR": ResourceVector(luts=9_000, registers=9_400, bram36=0, dsp=0),
    "DeepWalk": ResourceVector(),
    "Node2Vec": ResourceVector(luts=4_000, registers=6_000, bram36=0, dsp=0),
    "MetaPath": ResourceVector(luts=2_000, registers=3_000, bram36=0, dsp=0),
}

#: Frequency the implementation closes at for every kernel (Table IV),
#: and the scheduler standalone figure from Section VIII-F.
KERNEL_FREQUENCY_MHZ = 320.0
SCHEDULER_STANDALONE_MHZ = 450.0


def scheduler_units(num_pipelines: int) -> int:
    """Dispatcher/merger unit count of the zero-bubble scheduler.

    Balancer: ``2 * N * log2(N)`` units; distribution tree: ``N - 1``
    dispatchers; priority mergers: ``N``.
    """
    if num_pipelines < 1:
        raise ResourceModelError("num_pipelines must be >= 1")
    if num_pipelines == 1:
        return 1
    stages = math.ceil(math.log2(num_pipelines))
    return 2 * num_pipelines * stages + (num_pipelines - 1) + num_pipelines


def scheduler_resources(num_pipelines: int) -> ResourceVector:
    """Zero-bubble scheduler cost (Section VIII-F's standalone figure)."""
    return SCHEDULER_UNIT.scaled(scheduler_units(num_pipelines))


def estimate_kernel(
    spec: WalkSpec,
    num_pipelines: int = 16,
) -> ResourceVector:
    """Whole-accelerator resource estimate for one GRW kernel."""
    sampler_name = spec.make_sampler().name
    try:
        sampler_cost = SAMPLER_UNITS[sampler_name]
    except KeyError:
        raise ResourceModelError(f"no resource data for sampler {sampler_name!r}") from None
    per_pipeline = (
        ACCESS_ENGINE.scaled(2) + sampler_cost + RNG_UNIT + PIPELINE_BUFFERS
    )
    control = ALGORITHM_CONTROL.get(spec.name, ResourceVector())
    return (
        SHELL
        + per_pipeline.scaled(num_pipelines)
        + scheduler_resources(num_pipelines)
        + control.scaled(num_pipelines)
    )


def table4_row(spec: WalkSpec, device: DeviceSpec = ALVEO_U55C) -> dict[str, float]:
    """One Table IV row: utilization percentages plus frequency."""
    usage = estimate_kernel(spec, num_pipelines=device.max_pipelines)
    row = {k: v * 100.0 for k, v in usage.utilization(device).items()}
    row["Frequency"] = KERNEL_FREQUENCY_MHZ
    return row
