"""FPGA device catalog (Tables III and IV).

Capacities are the public Alveo/Versal datasheet numbers; each device
references the memory spec calibrated in :mod:`repro.memory.spec`, and
records how many RidgeWalker pipelines its channel count supports
(channels / 2, Section VIII-A1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResourceModelError
from repro.memory.spec import (
    DDR4_U250,
    DDR4_VCK5000,
    HBM2_U50,
    HBM2_U280,
    HBM2_U55C,
    MemorySpec,
)


@dataclass(frozen=True)
class DeviceSpec:
    """One FPGA board."""

    name: str
    luts: int
    registers: int
    bram36: int
    dsp: int
    memory: MemorySpec
    default_frequency_mhz: float = 320.0

    @property
    def max_pipelines(self) -> int:
        """Pipelines supported by the memory channels (2 per pipeline)."""
        return self.memory.num_channels // 2


ALVEO_U50 = DeviceSpec(
    name="U50",
    luts=872_000,
    registers=1_743_000,
    bram36=1_344,
    dsp=5_952,
    memory=HBM2_U50,
)

ALVEO_U55C = DeviceSpec(
    name="U55C",
    luts=1_304_000,
    registers=2_607_000,
    bram36=2_016,
    dsp=9_024,
    memory=HBM2_U55C,
)

ALVEO_U280 = DeviceSpec(
    name="U280",
    luts=1_304_000,
    registers=2_607_000,
    bram36=2_016,
    dsp=9_024,
    memory=HBM2_U280,
)

ALVEO_U250 = DeviceSpec(
    name="U250",
    luts=1_728_000,
    registers=3_456_000,
    bram36=2_688,
    dsp=12_288,
    memory=DDR4_U250,
)

VCK5000 = DeviceSpec(
    name="VCK5000",
    luts=900_000,
    registers=1_800_000,
    bram36=967,
    dsp=1_968,
    memory=DDR4_VCK5000,
)

#: Table III device order.
DEVICE_CATALOG: dict[str, DeviceSpec] = {
    "U250": ALVEO_U250,
    "VCK5000": VCK5000,
    "U50": ALVEO_U50,
    "U55C": ALVEO_U55C,
    "U280": ALVEO_U280,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by name."""
    try:
        return DEVICE_CATALOG[name]
    except KeyError:
        known = ", ".join(DEVICE_CATALOG)
        raise ResourceModelError(f"unknown device {name!r}; known: {known}") from None
