"""FPGA device catalog and analytical resource model (Tables III/IV)."""

from repro.resources.devices import (
    ALVEO_U250,
    ALVEO_U280,
    ALVEO_U50,
    ALVEO_U55C,
    DEVICE_CATALOG,
    VCK5000,
    DeviceSpec,
    get_device,
)
from repro.resources.model import (
    KERNEL_FREQUENCY_MHZ,
    SCHEDULER_STANDALONE_MHZ,
    ResourceVector,
    estimate_kernel,
    scheduler_resources,
    scheduler_units,
    table4_row,
)

__all__ = [
    "ALVEO_U250",
    "ALVEO_U280",
    "ALVEO_U50",
    "ALVEO_U55C",
    "DEVICE_CATALOG",
    "DeviceSpec",
    "KERNEL_FREQUENCY_MHZ",
    "ResourceVector",
    "SCHEDULER_STANDALONE_MHZ",
    "VCK5000",
    "estimate_kernel",
    "get_device",
    "scheduler_resources",
    "scheduler_units",
    "table4_row",
]
