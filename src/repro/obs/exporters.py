"""Exporters: JSONL event logs, Chrome ``trace_event`` JSON, Prometheus text.

Three render targets for the two in-memory stores
(:class:`~repro.obs.trace.Tracer` ring, :class:`~repro.obs.metrics.MetricsRegistry`):

* **Chrome trace JSON** (:func:`chrome_trace`, :func:`write_chrome_trace`)
  — the ``{"traceEvents": [...]}`` object format with complete (``"X"``)
  and instant (``"i"``) phases, microsecond timestamps, and pid/tid
  lanes; loads directly in ``chrome://tracing`` and `Perfetto
  <https://ui.perfetto.dev>`_.
* **JSONL** (:func:`write_jsonl`, :func:`replay_jsonl`) — one JSON
  object per line, spans and metric totals interleaved with typed
  records, built to round-trip: replaying a JSONL export reconstructs
  metric totals identical to ``registry.totals()``.
* **Prometheus text exposition** (:func:`render_prometheus`,
  :func:`parse_prometheus`) — ``# HELP``/``# TYPE`` headers, one sample
  per line, cumulative ``_bucket{le=...}``/``_sum``/``_count`` triples
  for histograms.  The bundled parser exists for the round-trip tests
  and the CLI's ledger-identity check, not as a general scraper.

Every writer takes a path and produces a self-contained file; none of
them mutate the tracer or registry, so exporting is repeatable.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import ObservabilityError
from repro.obs.metrics import Histogram, MetricsRegistry, format_labels
from repro.obs.trace import PHASE_INSTANT, SpanEvent, Tracer

#: pid stamped on exported trace events — the trace is single-process;
#: a stable value keeps diffs and golden files quiet.
TRACE_PID = 1


# -- Chrome trace_event -----------------------------------------------


def chrome_trace(events: Iterable[SpanEvent], pid: int = TRACE_PID) -> dict:
    """Build the Chrome ``trace_event`` object format for ``events``.

    Timestamps and durations are converted to integer-free microsecond
    floats (the format's native unit).  Instant events carry thread
    scope (``"s": "t"``) so Perfetto draws them as thread-lane ticks.
    """
    trace_events = []
    for event in events:
        record: dict = {
            "name": event.name,
            "ph": event.phase,
            "ts": event.ts * 1e6,
            "pid": pid,
            "tid": event.tid,
            "args": dict(event.args),
        }
        if event.phase == PHASE_INSTANT:
            record["s"] = "t"
        else:
            record["dur"] = event.dur * 1e6
        trace_events.append(record)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(path: str | Path, source: Tracer | Iterable[SpanEvent],
                       pid: int = TRACE_PID) -> int:
    """Write a Perfetto-loadable trace JSON; returns the event count."""
    events = source.events() if isinstance(source, Tracer) else tuple(source)
    payload = chrome_trace(events, pid=pid)
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(payload["traceEvents"])


# -- JSONL ------------------------------------------------------------


def span_lines(events: Iterable[SpanEvent]) -> Iterator[str]:
    """One ``{"type": "span", ...}`` JSON line per event."""
    for event in events:
        yield json.dumps({
            "type": "span",
            "name": event.name,
            "ph": event.phase,
            "ts": event.ts,
            "dur": event.dur,
            "tid": event.tid,
            "args": dict(event.args),
        }, sort_keys=True)


def metric_lines(registry: MetricsRegistry) -> Iterator[str]:
    """One ``{"type": "metric", ...}`` JSON line per flattened series."""
    for name, series in registry.totals().items():
        for labels, value in series.items():
            yield json.dumps({
                "type": "metric",
                "name": name,
                "labels": labels,
                "value": value,
            }, sort_keys=True)


def write_jsonl(path: str | Path, events: Iterable[SpanEvent] = (),
                registry: MetricsRegistry | None = None,
                meta: dict | None = None) -> int:
    """Write a combined JSONL export; returns the number of lines."""
    lines = []
    if meta is not None:
        lines.append(json.dumps({"type": "meta", **meta}, sort_keys=True))
    lines.extend(span_lines(events))
    if registry is not None:
        lines.extend(metric_lines(registry))
    Path(path).write_text("\n".join(lines) + "\n" if lines else "",
                          encoding="utf-8")
    return len(lines)


def replay_jsonl(source: str | Path | Iterable[str]) -> dict:
    """Reconstruct totals from a JSONL export.

    Returns ``{"spans": {name: {"count": n, "total_dur": seconds}},
    "metrics": {name: {labels: value}}, "meta": {...} | None}``; the
    ``metrics`` map is equal to the exporting registry's ``totals()``,
    which is the round-trip identity ``tests/obs`` pins down.
    """
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text(encoding="utf-8").splitlines()
    else:
        lines = source
    spans: dict[str, dict[str, float]] = {}
    metrics: dict[str, dict[str, float]] = {}
    meta = None
    for raw in lines:
        raw = raw.strip()
        if not raw:
            continue
        record = json.loads(raw)
        kind = record.get("type")
        if kind == "span":
            entry = spans.setdefault(record["name"], {"count": 0, "total_dur": 0.0})
            entry["count"] += 1
            entry["total_dur"] += record["dur"]
        elif kind == "metric":
            metrics.setdefault(record["name"], {})[record["labels"]] = record["value"]
        elif kind == "meta":
            meta = {k: v for k, v in record.items() if k != "type"}
        else:
            raise ObservabilityError(f"unknown JSONL record type {kind!r}")
    return {"spans": spans, "metrics": metrics, "meta": meta}


# -- Prometheus text exposition ---------------------------------------


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _sample(name: str, labels: str, value: float) -> str:
    if labels:
        return f"{name}{{{labels}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _with_le(labels: str, bound: str) -> str:
    le = f'le="{bound}"'
    return f"{labels},{le}" if labels else le


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    out: list[str] = []
    for metric in registry.collect():
        if metric.help:
            out.append(f"# HELP {metric.name} {metric.help}")
        out.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for key in metric.labelsets():
                counts, total_sum, total_count = metric.series(key)
                labels = format_labels(key)
                cumulative = 0
                for bound, count in zip(metric.buckets, counts):
                    cumulative += count
                    out.append(_sample(f"{metric.name}_bucket",
                                       _with_le(labels, str(bound)), cumulative))
                out.append(_sample(f"{metric.name}_bucket",
                                   _with_le(labels, "+Inf"), total_count))
                out.append(_sample(f"{metric.name}_sum", labels, total_sum))
                out.append(_sample(f"{metric.name}_count", labels, total_count))
        else:
            for key in metric.labelsets():
                out.append(_sample(metric.name, format_labels(key),
                                   metric.value(**dict(key))))
    return "\n".join(out) + "\n" if out else ""


def write_prometheus(path: str | Path, registry: MetricsRegistry) -> int:
    """Write the text exposition to ``path``; returns the sample count."""
    text = render_prometheus(registry)
    Path(path).write_text(text, encoding="utf-8")
    return sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )


def parse_prometheus(text: str) -> dict[tuple[str, str], float]:
    """Parse text exposition into ``{(name, label-string): value}``.

    Line-by-line and strict: anything that is neither a comment nor a
    well-formed sample raises :class:`ObservabilityError`.  Label
    strings are kept verbatim (sorted by the renderer), so round-trip
    comparisons are exact string matches.
    """
    samples: dict[tuple[str, str], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        body, _, value_text = line.rpartition(" ")
        if not body:
            raise ObservabilityError(f"line {lineno}: not a sample: {line!r}")
        if body.endswith("}"):
            name, _, labels = body.partition("{")
            labels = labels[:-1]
            if "{" not in body:
                raise ObservabilityError(f"line {lineno}: bad labels: {line!r}")
        else:
            name, labels = body, ""
        try:
            value = float(value_text)
        except ValueError as exc:
            raise ObservabilityError(
                f"line {lineno}: bad value {value_text!r}"
            ) from exc
        key = (name, labels)
        if key in samples:
            raise ObservabilityError(f"line {lineno}: duplicate sample {key}")
        samples[key] = value
    return samples
