"""Metrics registry: counters, gauges, and explicit-bucket histograms.

One registry unifies every subsystem ledger the reproduction has grown
— :class:`~repro.walks.EngineStats`, :class:`~repro.serve.ServeStats`
(global and per-tenant), the :class:`~repro.serve.HotWalkCache`
counters, and :class:`~repro.dynamic.DynamicGraph` delta/compaction
stats — into one namespace that the exporters render as Prometheus
text exposition or JSONL (:mod:`repro.obs.exporters`).

The bridge functions (``*_into``) translate each ledger into metrics
*by copy*: they read the ledger's already-maintained counters and write
them into a registry, so the hot paths that maintain those ledgers are
untouched and a registry built from a drained service reproduces the
ledgers exactly (``tests/obs`` asserts per-tenant equality and the
accounting identity ``offered == completed + dropped + failed`` on the
exported values).  Metric *types* follow Prometheus semantics: counters
are monotonically non-decreasing, gauges go both ways, histograms have
explicit ascending bucket bounds plus the implicit ``+Inf`` bucket.
"""

from __future__ import annotations

import math
import re
from collections.abc import Iterable, Iterator

from repro.errors import ObservabilityError

#: Latency histogram bounds in seconds: 0.5ms .. 2.5s, roughly log-spaced
#: around the micro-batching coalesce windows the serve layer uses.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Micro-batch occupancy bounds (requests per dispatched batch).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Sorted ``(key, value)`` label pairs — the dict key for one series.
LabelSet = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelSet:
    for name in labels:
        if not _LABEL_NAME.match(name):
            raise ObservabilityError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base class: a named family of series, one per label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str) -> None:
        if not _METRIC_NAME.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._series: dict[LabelSet, float] = {}

    def labelsets(self) -> list[LabelSet]:
        return sorted(self._series)

    def value(self, **labels) -> float:
        """Current value of one series (0.0 if never touched)."""
        return self._series.get(_label_key(labels), 0.0)


class Counter(Metric):
    """Monotonically non-decreasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount


class Gauge(Metric):
    """Point-in-time value that can move both ways."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram(Metric):
    """Cumulative histogram with explicit ascending bucket bounds.

    Per series we keep per-bound counts (plus the implicit ``+Inf``
    bucket), the observation sum, and the observation count — exactly
    the ``_bucket``/``_sum``/``_count`` triple Prometheus exposition
    expects (rendered cumulatively by the exporter).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError(f"histogram {name} needs >= 1 bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name} bucket bounds must be strictly ascending"
            )
        if any(math.isinf(b) for b in bounds):
            raise ObservabilityError(
                f"histogram {name}: +Inf bucket is implicit, do not pass it"
            )
        self.buckets = bounds
        # One slot per explicit bound plus the +Inf overflow slot.
        self._counts: dict[LabelSet, list[int]] = {}
        self._sums: dict[LabelSet, float] = {}
        self._totals: dict[LabelSet, int] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            self._sums[key] = 0.0
            self._totals[key] = 0
        slot = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                slot = i
                break
        counts[slot] += 1
        self._sums[key] += float(value)
        self._totals[key] += 1
        self._series[key] = self._sums[key]

    def observe_many(self, values: Iterable[float], **labels) -> None:
        for value in values:
            self.observe(value, **labels)

    def labelsets(self) -> list[LabelSet]:
        return sorted(self._counts)

    def series(self, key: LabelSet) -> tuple[list[int], float, int]:
        """``(per-bound counts, sum, count)`` — raw, non-cumulative."""
        return self._counts[key], self._sums[key], self._totals[key]

    def count(self, **labels) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels) -> float:
        return self._sums.get(_label_key(labels), 0.0)


class MetricsRegistry:
    """Get-or-create metric namespace with type/help consistency checks."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ObservabilityError(
                    f"metric {name} already registered as {existing.kind}, "
                    f"not {cls.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = LATENCY_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def collect(self) -> Iterator[Metric]:
        """Every registered metric, sorted by name (exposition order)."""
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def totals(self) -> dict[str, dict[str, float]]:
        """Flat ``{metric: {label-string: value}}`` view for identity tests.

        Histograms contribute their ``_sum`` and ``_count`` series; the
        label string is the Prometheus-style ``k="v"`` join, empty for
        unlabelled series — the same flattening the JSONL replay in
        :mod:`repro.obs.exporters` reconstructs.
        """
        flat: dict[str, dict[str, float]] = {}
        for metric in self.collect():
            if isinstance(metric, Histogram):
                sums: dict[str, float] = {}
                counts: dict[str, float] = {}
                for key in metric.labelsets():
                    _, total_sum, total_count = metric.series(key)
                    label = format_labels(key)
                    sums[label] = total_sum
                    counts[label] = float(total_count)
                flat[f"{metric.name}_sum"] = sums
                flat[f"{metric.name}_count"] = counts
            else:
                flat[metric.name] = {
                    format_labels(key): metric._series[key]
                    for key in metric.labelsets()
                }
        return flat


def format_labels(key: LabelSet) -> str:
    """Render a label set as ``k1="v1",k2="v2"`` (empty when unlabelled)."""
    return ",".join(f'{k}="{_escape(v)}"' for k, v in key)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


# -- subsystem bridges ------------------------------------------------


def engine_stats_into(registry: MetricsRegistry, stats, **labels) -> None:
    """Copy an :class:`~repro.walks.EngineStats` ledger into ``registry``."""
    registry.counter(
        "repro_engine_hops_total", "Walk hops executed by the engine",
    ).inc(stats.total_hops, **labels)
    registry.counter(
        "repro_engine_sampling_proposals_total",
        "Neighbor proposals drawn (incl. rejection-sampling retries)",
    ).inc(stats.sampling_proposals, **labels)
    registry.counter(
        "repro_engine_neighbor_reads_total",
        "Adjacency-list elements touched",
    ).inc(stats.neighbor_reads, **labels)
    terminations = registry.counter(
        "repro_engine_terminations_total",
        "Walk terminations by cause",
    )
    terminations.inc(stats.early_terminations, cause="early", **labels)
    terminations.inc(stats.dangling_terminations, cause="dangling", **labels)
    terminations.inc(stats.probabilistic_terminations, cause="stop_prob", **labels)
    terminations.inc(stats.length_terminations, cause="max_length", **labels)


def serve_stats_into(registry: MetricsRegistry, stats, **labels) -> None:
    """Copy a :class:`~repro.serve.ServeStats` ledger into ``registry``.

    The exported counters reproduce the ledger exactly, so the
    accounting identity ``offered == completed + dropped + failed``
    holds on the export whenever it holds on the ledger.
    """
    requests = registry.counter(
        "repro_serve_requests_total",
        "Requests by final outcome (offered = completed + dropped + failed)",
    )
    requests.inc(stats.completed, outcome="completed", **labels)
    requests.inc(stats.dropped, outcome="dropped", **labels)
    requests.inc(stats.failed, outcome="failed", **labels)
    registry.counter(
        "repro_serve_cache_hits_total",
        "Requests served from the hot-walk cache (subset of completed)",
    ).inc(stats.cache_hits, **labels)
    registry.counter(
        "repro_serve_hops_total", "Walk hops executed on behalf of the service",
    ).inc(stats.total_hops, **labels)
    registry.counter(
        "repro_serve_busy_seconds_total",
        "Engine wall-clock summed over micro-batches",
    ).inc(stats.busy_seconds, **labels)
    registry.histogram(
        "repro_serve_latency_seconds",
        "Submit-to-resolve latency of completed requests",
        buckets=LATENCY_BUCKETS,
    ).observe_many(stats.latencies, **labels)
    registry.histogram(
        "repro_serve_batch_size",
        "Requests per dispatched micro-batch",
        buckets=BATCH_SIZE_BUCKETS,
    ).observe_many(stats.batch_sizes, **labels)


def cache_into(registry: MetricsRegistry, cache, **labels) -> None:
    """Copy :class:`~repro.serve.HotWalkCache` counters into ``registry``."""
    lookups = registry.counter(
        "repro_cache_lookups_total", "Hot-walk cache lookups by result",
    )
    lookups.inc(cache.hits, result="hit", **labels)
    lookups.inc(cache.misses, result="miss", **labels)
    pools = registry.counter(
        "repro_cache_pools_total", "Walk pools built / invalidated",
    )
    pools.inc(cache.pools_built, event="built", **labels)
    pools.inc(cache.pools_invalidated, event="invalidated", **labels)
    registry.gauge(
        "repro_cache_live_pools", "Walk pools currently installed",
    ).set(cache.live_pools, **labels)


def dynamic_graph_into(registry: MetricsRegistry, graph, **labels) -> None:
    """Copy :class:`~repro.dynamic.DynamicGraph` counters into ``registry``."""
    registry.counter(
        "repro_dynamic_updates_total", "Streamed edge updates applied",
    ).inc(graph.updates_applied, **labels)
    registry.counter(
        "repro_dynamic_compactions_total", "Delta-into-CSR compactions",
    ).inc(graph.compactions, **labels)
    registry.counter(
        "repro_dynamic_compaction_seconds_total",
        "Wall-clock spent compacting deltas into the CSR base",
    ).inc(graph.compaction_seconds, **labels)
    registry.gauge(
        "repro_dynamic_delta_edges", "Edge endpoints currently in the delta layer",
    ).set(graph.delta_edges, **labels)
    registry.gauge(
        "repro_dynamic_epoch", "Current published snapshot epoch",
    ).set(graph.epoch, **labels)


def tracer_into(registry: MetricsRegistry, tracer, **labels) -> None:
    """Export the tracer's own ring accounting (drops are data too)."""
    snap = tracer.snapshot()
    events = registry.counter(
        "repro_trace_events_total", "Span events recorded / dropped by the ring",
    )
    events.inc(snap["recorded"], state="recorded", **labels)
    events.inc(snap["dropped"], state="dropped", **labels)
    registry.gauge(
        "repro_trace_buffered_events", "Span events currently buffered",
    ).set(snap["buffered"], **labels)


# -- the global registry ----------------------------------------------
#
# CLI wrappers (``repro metrics``) read this after running a wrapped
# command; run paths feed it once per run (never per hop), so keeping it
# always-on costs nothing measurable.

_registry = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return _registry


def reset_global_registry() -> MetricsRegistry:
    """Swap in a fresh global registry (tests / CLI run isolation)."""
    global _registry
    _registry = MetricsRegistry()
    return _registry
