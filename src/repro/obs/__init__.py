"""Unified telemetry: span tracing, a metrics registry, and exporters.

One instrumentation story for every subsystem grown in PRs 1–8.  The
:mod:`~repro.obs.trace` tracer records where time goes *inside* a run
(supersteps, shard dispatch, serve coalesce→execute→respond, epoch
swaps, cache pool fills) into a bounded ring; the
:mod:`~repro.obs.metrics` registry unifies the end-of-run ledgers
(``EngineStats``, ``ServeStats``, tenant QoS ledgers, cache and dynamic
graph counters) into Prometheus-shaped counters/gauges/histograms; the
:mod:`~repro.obs.exporters` render both as JSONL, Chrome
``trace_event`` JSON (Perfetto-loadable), or Prometheus text.

The contract that keeps this shippable: tracing is **off by default**
and its disabled path is benchmarked (``benchmarks/bench_obs_overhead.py``)
to stay within 2% of uninstrumented batch throughput, and nothing in
this package ever touches RNG state — traced runs are bit-identical to
untraced runs.  Entry points: ``repro trace`` / ``repro metrics`` wrap
any CLI run; ``WalkService.snapshot_metrics()`` exports a live service.
"""

from repro.obs.exporters import (
    chrome_trace,
    parse_prometheus,
    render_prometheus,
    replay_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    cache_into,
    dynamic_graph_into,
    engine_stats_into,
    global_registry,
    reset_global_registry,
    serve_stats_into,
    tracer_into,
)
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    SpanEvent,
    Tracer,
    active,
    configure_tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    tracing,
)

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "DEFAULT_CAPACITY",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "SpanEvent",
    "Tracer",
    "active",
    "cache_into",
    "chrome_trace",
    "configure_tracer",
    "disable_tracing",
    "dynamic_graph_into",
    "enable_tracing",
    "engine_stats_into",
    "get_tracer",
    "global_registry",
    "parse_prometheus",
    "render_prometheus",
    "replay_jsonl",
    "reset_global_registry",
    "serve_stats_into",
    "span",
    "tracer_into",
    "tracing",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
