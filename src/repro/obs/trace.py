"""Structured span tracing with a pay-for-what-you-use hot path.

The tracer answers the question the end-of-run aggregates
(:class:`~repro.walks.EngineStats`, :class:`~repro.serve.ServeStats`)
cannot: *where does the time go* inside a superstep, an epoch swap, or
a QoS dispatch cycle.  Every instrumented site records a
:class:`SpanEvent` — a name, a wall-clock interval measured with
``time.perf_counter()``, the recording thread, and a small payload of
subsystem context (frontier width, batch shape, epoch, tenant) — into a
bounded ring buffer that the exporters (:mod:`repro.obs.exporters`)
turn into JSONL, Chrome ``trace_event`` JSON, or nothing at all.

Design contract (benchmarked by ``benchmarks/bench_obs_overhead.py``):

* **Disabled by default, nearly free when disabled.**  The module-level
  :func:`active` returns ``None`` unless tracing is on, so hot loops
  hoist one call per run (``tracer = active()``) and pay a single local
  ``is not None`` branch per superstep thereafter.  Instrumented-but-
  disabled batch throughput must stay within 2% of the uninstrumented
  baseline (``BENCH_obs.json`` records the measurement).
* **Bounded memory with drop accounting.**  The ring holds at most
  ``capacity`` events; once full, the *oldest* events are evicted and
  counted in :attr:`Tracer.dropped` — a long traced run degrades into a
  suffix trace plus an honest drop count, never into unbounded growth.
* **No effect on results.**  Tracing never touches RNG state or walk
  data; enabling it must be bit-identical to disabling it (asserted by
  the overhead benchmark and ``tests/obs``).

Timestamps are ``perf_counter`` seconds relative to the tracer's own
start; they order events within one process and support duration
arithmetic (the whole point of RW107), but are not wall-clock dates.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import ObservabilityError

#: Default ring capacity: enough for ~an hour of serve-layer events or a
#: few thousand traced supersteps while staying a few MB of payload dicts.
DEFAULT_CAPACITY = 65_536

#: Complete (duration) event, Chrome trace_event phase "X".
PHASE_COMPLETE = "X"
#: Instantaneous event, Chrome trace_event phase "i".
PHASE_INSTANT = "i"


@dataclass(frozen=True)
class SpanEvent:
    """One recorded span or instant.

    ``ts`` and ``dur`` are seconds on the tracer's ``perf_counter``
    timeline (``dur == 0.0`` for instants); ``tid`` is the OS thread
    ident of the recording thread, which is what makes engine-executor
    work visibly parallel to the event loop in Perfetto.
    """

    name: str
    ts: float
    dur: float
    tid: int
    phase: str = PHASE_COMPLETE
    args: dict = field(default_factory=dict)


class _NullSpan:
    """The no-op context manager :meth:`Tracer.span` hands out when off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager that records one complete event on exit.

    Exceptions propagate (``__exit__`` returns ``False``) but the span
    still lands in the ring with an ``"error": True`` payload mark, so a
    trace of a failing run shows *where* it failed.
    """

    __slots__ = ("_tracer", "_name", "_args", "_start")

    def __init__(self, tracer: Tracer, name: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args
        self._start = 0.0

    def __enter__(self) -> _LiveSpan:
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._args = {**self._args, "error": True}
        self._tracer.end(self._start, self._name, **self._args)
        return False


class Tracer:
    """Bounded, thread-safe event recorder.

    All mutation funnels through :meth:`_record`, which appends to a
    ``deque(maxlen=capacity)`` — eviction of the oldest event is then a
    property of the container, and the drop count is derived as
    ``recorded - len(ring)`` so it can never disagree with the ring.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ObservabilityError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = False
        self._ring: deque[SpanEvent] = deque(maxlen=capacity)
        self._recorded = 0
        self._lock = threading.Lock()
        self._origin = time.perf_counter()

    # -- lifecycle ----------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop every buffered event and reset the drop accounting."""
        with self._lock:
            self._ring.clear()
            self._recorded = 0

    # -- recording ----------------------------------------------------

    def begin(self) -> float:
        """Start token for the hot-loop span API (a raw ``perf_counter``).

        Usage (hoist ``tracer = active()`` outside the loop)::

            if tracer is not None:
                t0 = tracer.begin()
            ...vectorized work...
            if tracer is not None:
                tracer.end(t0, "batch.superstep", step=step, frontier=width)
        """
        return time.perf_counter()

    def end(self, token: float, name: str, **args) -> None:
        """Record a complete span started at ``token``."""
        now = time.perf_counter()
        self._record(SpanEvent(
            name=name,
            ts=token - self._origin,
            dur=now - token,
            tid=threading.get_ident(),
            phase=PHASE_COMPLETE,
            args=args,
        ))

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker (shed decision, cache hit, ...)."""
        self._record(SpanEvent(
            name=name,
            ts=time.perf_counter() - self._origin,
            dur=0.0,
            tid=threading.get_ident(),
            phase=PHASE_INSTANT,
            args=args,
        ))

    def span(self, name: str, **args):
        """Context-manager span; a shared no-op singleton when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, args)

    def _record(self, event: SpanEvent) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._ring.append(event)
            self._recorded += 1

    # -- inspection ---------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events evicted from the ring since the last :meth:`clear`."""
        with self._lock:
            return self._recorded - len(self._ring)

    def events(self) -> tuple[SpanEvent, ...]:
        """Consistent snapshot of the buffered events, oldest first."""
        with self._lock:
            return tuple(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def snapshot(self) -> dict:
        """JSON-ready tracer accounting (embedded next to exports)."""
        with self._lock:
            buffered = len(self._ring)
            recorded = self._recorded
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "buffered": buffered,
            "recorded": recorded,
            "dropped": recorded - buffered,
        }


# -- the global tracer ------------------------------------------------
#
# One process-wide instance, off by default.  Instrumented sites call
# ``active()`` once per run; everything else (CLI wrappers, benchmarks,
# tests) goes through enable/disable or the ``tracing()`` guard.

_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer (disabled by default)."""
    return _tracer


def active() -> Tracer | None:
    """The global tracer when tracing is on, else ``None``.

    This is the only call hot paths make: hoisting the result means the
    disabled cost per iteration is one local ``is not None`` check, and
    the disabled code path is byte-for-byte the uninstrumented one.
    """
    return _tracer if _tracer.enabled else None


def configure_tracer(capacity: int = DEFAULT_CAPACITY) -> Tracer:
    """Replace the global tracer with a fresh (disabled) one."""
    global _tracer
    _tracer = Tracer(capacity=capacity)
    return _tracer


def enable_tracing(capacity: int | None = None) -> Tracer:
    """Turn the global tracer on, optionally resizing its ring first."""
    if capacity is not None and capacity != _tracer.capacity:
        configure_tracer(capacity)
    _tracer.enable()
    return _tracer


def disable_tracing() -> Tracer:
    """Turn the global tracer off (buffered events remain exportable)."""
    _tracer.disable()
    return _tracer


def span(name: str, **args):
    """Module-level convenience: a span on the global tracer (or no-op)."""
    return _tracer.span(name, **args)


@contextmanager
def tracing(capacity: int | None = None) -> Iterator[Tracer]:
    """Scoped enable/disable guard used by tests and benchmarks.

    Restores the previous enabled state on exit so a test that traces
    never leaks an enabled global tracer into the next test.
    """
    was_enabled = _tracer.enabled
    tracer = enable_tracing(capacity)
    try:
        yield tracer
    finally:
        if not was_enabled:
            tracer.disable()
