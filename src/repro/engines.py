"""Engine registry: the one place that maps engine names to runners.

Four engines execute the same ``WalkSpec``/``Query`` workloads and are
held to the same statistical oracle: the cycle-level accelerator model
(``sim``), the sharded multicore engine (``parallel``), the vectorized
batch engine (``batch``) and the pure-Python reference loop
(``reference``).  The CLI and the example applications both dispatch
through this module so the engine list, each engine's option surface,
and the timing methodology cannot drift between entry points.

Engine-specific options (today: ``workers`` for the parallel engine)
ride through ``run_software_walks`` as keyword arguments; the registry
validates them against each engine's declared option set so a typo or a
flag aimed at the wrong engine fails loudly instead of being ignored.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core import RidgeWalker, RidgeWalkerConfig
from repro.errors import WalkConfigError
from repro.graph.csr import CSRGraph
from repro.memory.spec import HBM2_U55C
from repro.parallel import run_walks_parallel
from repro.walks import EngineStats, Query, WalkResults, WalkSpec, run_walks, run_walks_batch

#: Every engine name accepted by ``--engine`` flags.
ENGINES = ("sim", "batch", "parallel", "reference")

#: The engines that run as plain software (no cycle model).
SOFTWARE_ENGINES = {
    "batch": run_walks_batch,
    "parallel": run_walks_parallel,
    "reference": run_walks,
}

#: Extra keyword options each software engine accepts beyond the shared
#: ``(graph, spec, queries, seed, stats)`` signature.
ENGINE_OPTIONS: dict[str, frozenset[str]] = {
    "batch": frozenset(),
    "parallel": frozenset({"workers"}),
    "reference": frozenset(),
}


def run_software_walks(
    engine: str,
    graph: CSRGraph,
    spec: WalkSpec,
    queries: Sequence[Query],
    seed: int = 0,
    stats: EngineStats | None = None,
    **options,
) -> tuple[WalkResults, float]:
    """Run a software engine, returning ``(results, elapsed_seconds)``.

    ``options`` carries engine-specific settings (``workers=N`` for the
    parallel engine); ``None``-valued options mean "engine default" and
    are dropped.  Options an engine does not declare are rejected.
    """
    try:
        runner = SOFTWARE_ENGINES[engine]
    except KeyError:
        raise WalkConfigError(
            f"unknown software engine {engine!r}; expected one of "
            f"{sorted(SOFTWARE_ENGINES)}"
        ) from None
    options = {name: value for name, value in options.items() if value is not None}
    unknown = set(options) - ENGINE_OPTIONS[engine]
    if unknown:
        raise WalkConfigError(
            f"engine {engine!r} does not accept option(s) "
            f"{', '.join(sorted(unknown))}; it accepts "
            f"{sorted(ENGINE_OPTIONS[engine]) or 'no options'}"
        )
    started = time.perf_counter()
    results = runner(graph, spec, queries, seed=seed, stats=stats, **options)
    return results, time.perf_counter() - started


def run_accelerator_walks(
    graph: CSRGraph,
    spec: WalkSpec,
    queries: Sequence[Query],
    seed: int = 0,
    num_pipelines: int = 4,
    memory=HBM2_U55C,
):
    """Run the cycle-level accelerator model; returns its ``RunOutcome``
    (``.results`` + ``.metrics``)."""
    config = RidgeWalkerConfig(num_pipelines=num_pipelines, memory=memory)
    return RidgeWalker(graph, spec, config, seed=seed).run(queries)


def hops_per_second(hops: int, elapsed: float) -> float:
    """Throughput with a zero-duration guard (tiny workloads)."""
    return hops / elapsed if elapsed > 0 else float("inf")
