"""Engine registry: the one place that maps engine names to runners.

Three engines execute the same ``WalkSpec``/``Query`` workloads and are
held to the same statistical oracle: the cycle-level accelerator model
(``sim``), the vectorized batch engine (``batch``) and the pure-Python
reference loop (``reference``).  The CLI and the example applications
both dispatch through this module so the engine list and the timing
methodology cannot drift between entry points.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core import RidgeWalker, RidgeWalkerConfig
from repro.errors import WalkConfigError
from repro.graph.csr import CSRGraph
from repro.memory.spec import HBM2_U55C
from repro.walks import EngineStats, Query, WalkResults, WalkSpec, run_walks, run_walks_batch

#: Every engine name accepted by ``--engine`` flags.
ENGINES = ("sim", "batch", "reference")

#: The engines that run as plain software (no cycle model).
SOFTWARE_ENGINES = {"batch": run_walks_batch, "reference": run_walks}


def run_software_walks(
    engine: str,
    graph: CSRGraph,
    spec: WalkSpec,
    queries: Sequence[Query],
    seed: int = 0,
    stats: EngineStats | None = None,
) -> tuple[WalkResults, float]:
    """Run a software engine, returning ``(results, elapsed_seconds)``."""
    try:
        runner = SOFTWARE_ENGINES[engine]
    except KeyError:
        raise WalkConfigError(
            f"unknown software engine {engine!r}; expected one of "
            f"{sorted(SOFTWARE_ENGINES)}"
        ) from None
    started = time.perf_counter()
    results = runner(graph, spec, queries, seed=seed, stats=stats)
    return results, time.perf_counter() - started


def run_accelerator_walks(
    graph: CSRGraph,
    spec: WalkSpec,
    queries: Sequence[Query],
    seed: int = 0,
    num_pipelines: int = 4,
    memory=HBM2_U55C,
):
    """Run the cycle-level accelerator model; returns its ``RunOutcome``
    (``.results`` + ``.metrics``)."""
    config = RidgeWalkerConfig(num_pipelines=num_pipelines, memory=memory)
    return RidgeWalker(graph, spec, config, seed=seed).run(queries)


def hops_per_second(hops: int, elapsed: float) -> float:
    """Throughput with a zero-duration guard (tiny workloads)."""
    return hops / elapsed if elapsed > 0 else float("inf")
