"""Engine registry: the one place that maps engine names to runners.

Six engines execute the same ``WalkSpec``/``Query`` workloads and are
held to the same statistical oracle: the cycle-level accelerator model
(``sim``), the sharded multicore engine (``parallel``), the distributed
shard-routed engine (``dist``), the vectorized batch engine (``batch``),
the numba-compiled fused-kernel engine (``jit``) and the pure-Python
reference loop (``reference``).  The CLI
and the example applications both dispatch through this module so the
engine list, each engine's option surface, and the timing methodology
cannot drift between entry points.

Engine-specific options (``workers``/``backend`` for the parallel
engine, ``sampler`` everywhere) ride through ``run_software_walks`` as
keyword arguments; the registry validates them against each engine's
declared option set so a typo or a flag aimed at the wrong engine fails
loudly instead of being ignored.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Sequence

from repro.core import RidgeWalker, RidgeWalkerConfig
from repro.dist import DistWalkEngine, run_walks_dist
from repro.errors import WalkConfigError
from repro.graph.csr import CSRGraph
from repro.memory.spec import HBM2_U55C
from repro.obs.metrics import global_registry
from repro.obs.trace import span as _trace_span
from repro.parallel import ParallelWalkEngine, run_walks_parallel, validate_worker_backend
from repro.sampling.hybrid import (
    SAMPLER_MODES,
    make_walk_kernel,
    validate_sampler_mode,
)
from repro.walks import EngineStats, Query, WalkResults, WalkSpec, run_walks, run_walks_batch
from repro.walks.batch import check_batch_spec
from repro.walks.jit import (
    NUMBA_AVAILABLE,
    jit_state_from_kernel,
    run_walks_jit,
    run_walks_jit_prepared,
    warn_numba_fallback,
)

#: Every engine name accepted by ``--engine`` flags.
ENGINES = ("sim", "batch", "jit", "parallel", "dist", "reference")

#: The engines that run as plain software (no cycle model).
SOFTWARE_ENGINES = {
    "batch": run_walks_batch,
    "jit": run_walks_jit,
    "parallel": run_walks_parallel,
    "dist": run_walks_dist,
    "reference": run_walks,
}

#: Extra keyword options each software engine accepts beyond the shared
#: ``(graph, spec, queries, seed, stats)`` signature.  ``sampler``
#: (``"default"`` | ``"auto"``) picks the sampling backend on every
#: engine: auto runs the cost-model-driven per-row hybrid of
#: :mod:`repro.sampling.hybrid`.  ``backend`` (``"batch"`` | ``"jit"``)
#: picks the per-shard core the parallel engine's workers run.
#: ``shards`` sets the distributed engine's graph-partition count.
ENGINE_OPTIONS: dict[str, frozenset[str]] = {
    "batch": frozenset({"sampler"}),
    "jit": frozenset({"sampler"}),
    "parallel": frozenset({"workers", "sampler", "backend"}),
    "dist": frozenset({"shards", "sampler"}),
    "reference": frozenset({"sampler"}),
}


def _validate_engine_options(engine: str, options: dict) -> dict:
    """Drop ``None``-valued options and reject ones ``engine`` lacks.

    This is the one shared validation point for every entry path
    (one-shot runs, prepared engines, the serving layer): option *names*
    are checked against the engine's declared set, and the ``sampler``
    option's *value* is checked against :data:`SAMPLER_MODES` so a typo
    fails here, naming the valid choices, instead of deep inside a
    kernel factory (or, worse, inside a worker process).
    """
    if engine not in SOFTWARE_ENGINES:
        raise WalkConfigError(
            f"unknown software engine {engine!r}; expected one of "
            f"{sorted(SOFTWARE_ENGINES)}"
        )
    options = {name: value for name, value in options.items() if value is not None}
    unknown = set(options) - ENGINE_OPTIONS[engine]
    if unknown:
        raise WalkConfigError(
            f"engine {engine!r} does not accept option(s) "
            f"{', '.join(sorted(unknown))}; it accepts "
            f"{sorted(ENGINE_OPTIONS[engine]) or 'no options'}"
        )
    if "sampler" in options:
        validate_sampler_mode(options["sampler"])
    if "backend" in options:
        validate_worker_backend(options["backend"])
    return options


def run_software_walks(
    engine: str,
    graph: CSRGraph,
    spec: WalkSpec,
    queries: Sequence[Query],
    seed: int = 0,
    stats: EngineStats | None = None,
    **options,
) -> tuple[WalkResults, float]:
    """Run a software engine, returning ``(results, elapsed_seconds)``.

    ``options`` carries engine-specific settings (``workers=N`` for the
    parallel engine); ``None``-valued options mean "engine default" and
    are dropped.  Options an engine does not declare are rejected.
    """
    options = _validate_engine_options(engine, options)
    runner = SOFTWARE_ENGINES[engine]
    with _trace_span("engine.run", engine=engine, queries=len(queries)):
        started = time.perf_counter()
        results = runner(graph, spec, queries, seed=seed, stats=stats, **options)
        elapsed = time.perf_counter() - started
    _record_run_metrics(engine, results, elapsed)
    return results, elapsed


def _record_run_metrics(engine: str, results: WalkResults, elapsed: float) -> None:
    """Feed per-run counters into the global metrics registry.

    Once per *run*, never per hop, so the always-on cost is a few dict
    operations; ``repro metrics`` renders the accumulated registry after
    a wrapped command finishes.
    """
    registry = global_registry()
    registry.counter(
        "repro_engine_runs_total", "One-shot software engine runs",
    ).inc(1, engine=engine)
    registry.counter(
        "repro_engine_run_seconds_total", "Wall-clock summed over one-shot runs",
    ).inc(elapsed, engine=engine)
    registry.counter(
        "repro_engine_run_hops_total", "Hops executed by one-shot runs",
    ).inc(results.total_steps, engine=engine)


class PreparedEngine(ABC):
    """A software engine with its per-graph setup already paid.

    ``run_software_walks`` is the one-shot path: every call re-prepares
    the sampling kernel (alias tables, edge keys) and, for the parallel
    engine, spins the worker pool up and down.  A serving layer calls an
    engine thousands of times against the same graph, so the registry
    also hands out *prepared* handles: construction pays the setup once
    and :meth:`run` does only per-batch work.  Semantics are unchanged —
    a prepared engine's results are bit-identical to its one-shot
    counterpart at equal ``(queries, seed)``.
    """

    #: Registry name of the underlying engine.
    name: str

    @abstractmethod
    def run(
        self,
        queries: Sequence[Query],
        seed: int = 0,
        stats: EngineStats | None = None,
    ) -> WalkResults:
        """Execute one batch against the prepared state."""

    def swap_snapshot(self, snapshot) -> None:
        """Repoint this prepared engine at a new graph version.

        ``snapshot`` is either a plain :class:`CSRGraph` or a dynamic
        :class:`~repro.dynamic.graph.GraphSnapshot`; a snapshot's
        incrementally maintained sampler state replaces the kernel
        preparation pass, so the swap costs a state hand-off rather than
        an alias-table/edge-key rebuild.  Long-lived resources (the
        parallel engine's worker pool and its processes) survive the
        swap.  Callers must not swap while a :meth:`run` is executing;
        the serving layer applies swaps on epoch boundaries.
        """
        raise WalkConfigError(
            f"engine {self.name!r} does not support snapshot swaps"
        )

    def close(self) -> None:
        """Release held resources (worker pools, shared memory)."""

    def __enter__(self) -> "PreparedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _resolve_snapshot(snapshot) -> tuple[CSRGraph, object | None]:
    """Split a swap target into ``(graph, sampler_state_or_None)``.

    Duck-typed on the :class:`~repro.dynamic.graph.GraphSnapshot` shape so
    this registry does not import the dynamic subsystem (which imports
    the registry for its benchmarks).
    """
    graph = getattr(snapshot, "graph", snapshot)
    state = getattr(snapshot, "sampler_state", None)
    if not isinstance(graph, CSRGraph):
        raise WalkConfigError(
            f"cannot swap to {type(snapshot).__name__}; expected a CSRGraph "
            "or a dynamic GraphSnapshot"
        )
    return graph, state


class _PreparedReferenceEngine(PreparedEngine):
    """Reference loop handle: nothing to amortize, kept for uniformity."""

    name = "reference"

    def __init__(self, graph: CSRGraph, spec: WalkSpec, sampler: str = "default") -> None:
        self._graph = graph
        self._spec = spec
        self._sampler_mode = validate_sampler_mode(sampler)

    def run(self, queries, seed=0, stats=None):
        return run_walks(self._graph, self._spec, queries, seed=seed, stats=stats,
                         sampler=self._sampler_mode)

    def swap_snapshot(self, snapshot) -> None:
        # The scalar samplers re-prepare per run; only the graph swaps.
        self._graph, _ = _resolve_snapshot(snapshot)


class _PreparedBatchEngine(PreparedEngine):
    """Batch engine handle holding a prepared vectorized kernel."""

    name = "batch"

    def __init__(self, graph: CSRGraph, spec: WalkSpec, sampler: str = "default") -> None:
        check_batch_spec(spec)
        self._graph = graph
        self._spec = spec
        self._sampler_mode = validate_sampler_mode(sampler)
        self._kernel = make_walk_kernel(spec.make_sampler(), sampler)
        self._kernel.prepare(graph)

    def run(self, queries, seed=0, stats=None):
        return run_walks_batch(
            self._graph, self._spec, queries, seed=seed, stats=stats,
            kernel=self._kernel,
        )

    def swap_snapshot(self, snapshot) -> None:
        graph, state = _resolve_snapshot(snapshot)
        kernel = make_walk_kernel(self._spec.make_sampler(), self._sampler_mode)
        arrays = state.kernel_arrays(kernel) if state is not None else None
        if arrays:
            kernel.load_state(arrays)
        elif arrays is None:
            kernel.prepare(graph)
        # arrays == {}: the kernel holds no per-graph state; nothing to do.
        self._graph = graph
        self._kernel = kernel


class _PreparedJitEngine(PreparedEngine):
    """Jit engine handle: prepared kernel state recast as typed arrays.

    Construction prepares the *batch* kernel (alias tables, CDF rows,
    edge keys, strategy codes) and rebinds its arrays into the fused
    kernel's :class:`~repro.walks.jit.JitWalkState` — one source of truth
    for the tables, so the two engines cannot drift.  The first
    :meth:`run` pays numba's compile (cached on disk via
    ``cache=True``); without numba every run degrades to the held batch
    kernel after a single warning, bit-identically.
    """

    name = "jit"

    def __init__(self, graph: CSRGraph, spec: WalkSpec, sampler: str = "default") -> None:
        check_batch_spec(spec)
        self._graph = graph
        self._spec = spec
        self._sampler_mode = validate_sampler_mode(sampler)
        self._kernel = make_walk_kernel(spec.make_sampler(), sampler)
        self._kernel.prepare(graph)
        self._state = jit_state_from_kernel(graph, spec, self._kernel)

    def run(self, queries, seed=0, stats=None):
        if not NUMBA_AVAILABLE:
            warn_numba_fallback()
            return run_walks_batch(
                self._graph, self._spec, queries, seed=seed, stats=stats,
                kernel=self._kernel,
            )
        return run_walks_jit_prepared(
            self._graph, self._spec, self._state, queries, seed=seed, stats=stats
        )

    def swap_snapshot(self, snapshot) -> None:
        graph, state = _resolve_snapshot(snapshot)
        kernel = make_walk_kernel(self._spec.make_sampler(), self._sampler_mode)
        arrays = state.kernel_arrays(kernel) if state is not None else None
        if arrays:
            kernel.load_state(arrays)
        elif arrays is None:
            kernel.prepare(graph)
        # arrays == {}: the kernel holds no per-graph state; the jit
        # state still rebinds (strategy codes size with the graph).
        self._graph = graph
        self._kernel = kernel
        self._state = jit_state_from_kernel(graph, self._spec, kernel)


class _PreparedParallelEngine(PreparedEngine):
    """Parallel engine handle wrapping a persistent worker pool."""

    name = "parallel"

    def __init__(self, graph: CSRGraph, spec: WalkSpec, workers: int | None = None,
                 sampler: str = "default", backend: str = "batch") -> None:
        self._spec = spec
        self._sampler_mode = validate_sampler_mode(sampler)
        self._engine = ParallelWalkEngine(graph, spec, workers=workers,
                                          sampler=sampler, backend=backend)

    def run(self, queries, seed=0, stats=None):
        return self._engine.run(queries, seed=seed, stats=stats)

    def swap_snapshot(self, snapshot) -> None:
        graph, state = _resolve_snapshot(snapshot)
        arrays = None
        if state is not None:
            arrays = state.kernel_arrays(
                make_walk_kernel(self._spec.make_sampler(), self._sampler_mode)
            )
        self._engine.swap_graph(graph, kernel_arrays=arrays)

    def close(self) -> None:
        self._engine.close()


class _PreparedDistEngine(PreparedEngine):
    """Distributed engine handle wrapping persistent shard workers."""

    name = "dist"

    def __init__(self, graph: CSRGraph, spec: WalkSpec, shards: int | None = None,
                 sampler: str = "default") -> None:
        self._spec = spec
        self._sampler_mode = validate_sampler_mode(sampler)
        self._engine = DistWalkEngine(graph, spec, shards=shards, sampler=sampler)

    def run(self, queries, seed=0, stats=None):
        return self._engine.run(queries, seed=seed, stats=stats)

    def swap_snapshot(self, snapshot) -> None:
        graph, state = _resolve_snapshot(snapshot)
        arrays = None
        if state is not None:
            arrays = state.kernel_arrays(
                make_walk_kernel(self._spec.make_sampler(), self._sampler_mode)
            )
        self._engine.swap_graph(graph, kernel_arrays=arrays)

    def close(self) -> None:
        self._engine.close()


_PREPARED_ENGINES = {
    "reference": _PreparedReferenceEngine,
    "batch": _PreparedBatchEngine,
    "jit": _PreparedJitEngine,
    "parallel": _PreparedParallelEngine,
    "dist": _PreparedDistEngine,
}


def prepare_engine(
    engine: str, graph: CSRGraph, spec: WalkSpec, **options
) -> PreparedEngine:
    """Build a :class:`PreparedEngine` for repeated runs on one graph.

    Accepts the same engine names and engine-specific options as
    :func:`run_software_walks` (and rejects misdirected options the same
    way).  Close the handle — or use it as a context manager — when done;
    the parallel handle owns a worker pool and a shared-memory segment.
    """
    options = _validate_engine_options(engine, options)
    with _trace_span("engine.prepare", engine=engine):
        return _PREPARED_ENGINES[engine](graph, spec, **options)


def run_accelerator_walks(
    graph: CSRGraph,
    spec: WalkSpec,
    queries: Sequence[Query],
    seed: int = 0,
    num_pipelines: int = 4,
    memory=HBM2_U55C,
):
    """Run the cycle-level accelerator model; returns its ``RunOutcome``
    (``.results`` + ``.metrics``)."""
    config = RidgeWalkerConfig(num_pipelines=num_pipelines, memory=memory)
    return RidgeWalker(graph, spec, config, seed=seed).run(queries)


def hops_per_second(hops: int, elapsed: float) -> float:
    """Throughput with a zero-duration guard (tiny workloads)."""
    return hops / elapsed if elapsed > 0 else float("inf")
